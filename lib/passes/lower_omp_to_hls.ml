(* "lower omp loops to HLS" (paper, Section 3): runs on the device module.

   - Inserts hls.interface operations mapping each kernel argument onto an
     AXI port: array arguments get their own m_axi bundle (gmem0, gmem1,
     ...), scalar (rank-0) arguments go over s_axilite, as in Listing 4.
   - omp.parallel_do becomes an scf.for nest whose innermost body starts
     with hls.pipeline(II=1); the simd clause adds hls.unroll(simdlen) —
     partial unrolling, the FPGA sweet spot the paper describes.
   - The reduction clause is rewritten into n copies of the reduction
     variable updated round-robin (copy index = iv mod n) so consecutive
     loop iterations do not wait on the floating-point add latency; the
     copies are combined after the loop. n is chosen statically from the
     reduced datatype. *)

open Ftn_ir
open Ftn_dialects

type options = {
  pipeline_ii : int;
  copies_f32 : int;
  copies_f64 : int;
  copies_int : int;
}

let default_options =
  { pipeline_ii = 1; copies_f32 = 8; copies_f64 = 12; copies_int = 4 }

let reduction_copies opts ty =
  match ty with
  | Types.F64 -> opts.copies_f64
  | Types.F32 -> opts.copies_f32
  | _ -> opts.copies_int

let identity_attr kind ty =
  let neg_inf = -.Float.infinity and pos_inf = Float.infinity in
  match (kind, ty) with
  | Omp.Red_add, (Types.F32 | Types.F64) -> Attr.Float (0.0, ty)
  | Omp.Red_add, _ -> Attr.Int (0, ty)
  | Omp.Red_mul, (Types.F32 | Types.F64) -> Attr.Float (1.0, ty)
  | Omp.Red_mul, _ -> Attr.Int (1, ty)
  | Omp.Red_max, (Types.F32 | Types.F64) -> Attr.Float (neg_inf, ty)
  | Omp.Red_max, _ -> Attr.Int (min_int / 2, ty)
  | Omp.Red_min, (Types.F32 | Types.F64) -> Attr.Float (pos_inf, ty)
  | Omp.Red_min, _ -> Attr.Int (max_int / 2, ty)

let combine_op b kind a c =
  match (kind, Types.is_float (Value.ty a)) with
  | Omp.Red_add, true -> Arith.addf b ~fastmath:true a c
  | Omp.Red_add, false -> Arith.addi b a c
  | Omp.Red_mul, true -> Arith.mulf b ~fastmath:true a c
  | Omp.Red_mul, false -> Arith.muli b a c
  | Omp.Red_max, true -> Arith.maxf b a c
  | Omp.Red_max, false -> Arith.maxsi b a c
  | Omp.Red_min, true -> Arith.minf b a c
  | Omp.Red_min, false -> Arith.minsi b a c

(* --- interface insertion --- *)

let insert_interfaces b fn =
  if not (Func_d.has_body fn) then fn
  else begin
    let args = Func_d.params fn in
    let gmem = ref 0 in
    let iface_ops =
      List.concat_map
        (fun arg ->
          match Value.ty arg with
          | Types.Memref { shape = _ :: _; _ } ->
            let bundle = Fmt.str "gmem%d" !gmem in
            incr gmem;
            let kind =
              Arith.const_i32 b (Hls.int_of_protocol Hls.M_axi)
            in
            let proto = Hls.axi_protocol b (Op.result1 kind) in
            [
              kind;
              proto;
              Hls.interface ~arg ~protocol:(Op.result1 proto) ~bundle;
            ]
          | Types.Memref { shape = []; _ } ->
            let kind =
              Arith.const_i32 b (Hls.int_of_protocol Hls.S_axilite)
            in
            let proto = Hls.axi_protocol b (Op.result1 kind) in
            [
              kind;
              proto;
              Hls.interface ~arg ~protocol:(Op.result1 proto)
                ~bundle:"control";
            ]
          | _ -> [])
        args
    in
    if iface_ops = [] then fn
    else
      let blk = Op.region_block fn 0 in
      {
        fn with
        Op.regions = [ [ { blk with Op.body = iface_ops @ blk.Op.body } ] ];
      }
  end

(* --- parallel_do lowering --- *)

let strip_omp_yield ops =
  List.filter (fun o -> not (String.equal (Op.name o) "omp.yield")) ops

let lower_parallel_do b opts op =
  match Omp.loop_parts op with
  | None -> [ op ]
  | Some parts ->
    let innermost_iv = List.nth parts.Omp.ivs (List.length parts.Omp.ivs - 1) in
    (* reduction prologue: n-copy buffers *)
    let pre_ops = ref [] in
    let post_ops = ref [] in
    let emit_pre o = pre_ops := o :: !pre_ops in
    let emit_pre_get o =
      emit_pre o;
      Op.result1 o
    in
    let red_infos =
      List.map
        (fun (kind, acc) ->
          let elt =
            match Value.ty acc with
            | Types.Memref { elt; _ } -> elt
            | other -> other
          in
          let n = reduction_copies opts elt in
          let copies_ty = Types.memref_static [ n ] elt in
          let copies = emit_pre_get (Memref_d.alloca b copies_ty) in
          emit_pre
            (Hls.array_partition ~array:copies ~kind:"complete" ~factor:n);
          (* copies[0] = incoming accumulator; the rest the identity *)
          let acc0 = emit_pre_get (Memref_d.load b acc []) in
          let zero = emit_pre_get (Arith.const_index b 0) in
          emit_pre (Memref_d.store acc0 copies [ zero ]);
          let ident =
            emit_pre_get (Arith.constant b (identity_attr kind elt) elt)
          in
          for i = 1 to n - 1 do
            let idx = emit_pre_get (Arith.const_index b i) in
            emit_pre (Memref_d.store ident copies [ idx ])
          done;
          (kind, acc, copies, n))
        parts.Omp.reduction_accs
    in
    (* body rewrite: redirect accumulator accesses into the copies *)
    let body = strip_omp_yield parts.Omp.loop_body in
    let body, mod_ops =
      if red_infos = [] then (body, [])
      else begin
        let n0 = match red_infos with (_, _, _, n) :: _ -> n | [] -> 1 in
        let n_const = Arith.const_index b n0 in
        let slot =
          Builder.op1 b "arith.remsi"
            ~operands:[ innermost_iv; Op.result1 n_const ]
            Types.Index
        in
        let slot_v = Op.result1 slot in
        let rewrite_acc op =
          match Op.name op with
          | "memref.load" -> (
            match Op.operands op with
            | [ mr ] -> (
              match
                List.find_opt (fun (_, acc, _, _) -> Value.equal acc mr) red_infos
              with
              | Some (_, _, copies, _) ->
                [ { op with Op.operands = [ copies; slot_v ] } ]
              | None -> [ op ])
            | _ -> [ op ])
          | "memref.store" -> (
            match Op.operands op with
            | [ v; mr ] -> (
              match
                List.find_opt (fun (_, acc, _, _) -> Value.equal acc mr) red_infos
              with
              | Some (_, _, copies, _) ->
                [ { op with Op.operands = [ v; copies; slot_v ] } ]
              | None -> [ op ])
            | _ -> [ op ])
          | _ -> [ op ]
        in
        let body =
          List.concat_map
            (fun o -> List.concat_map rewrite_acc [ o ])
            body
        in
        (body, [ n_const; slot ])
      end
    in
    (* reduction epilogue: fold the copies into the accumulator *)
    List.iter
      (fun (kind, acc, copies, n) ->
        let ops = ref [] in
        let emit o = ops := o :: !ops in
        let emit_get o =
          emit o;
          Op.result1 o
        in
        let zero = emit_get (Arith.const_index b 0) in
        let first = emit_get (Memref_d.load b copies [ zero ]) in
        let total = ref first in
        for i = 1 to n - 1 do
          let idx = emit_get (Arith.const_index b i) in
          let v = emit_get (Memref_d.load b copies [ idx ]) in
          total := emit_get (combine_op b kind !total v)
        done;
        emit (Memref_d.store !total acc []);
        post_ops := !post_ops @ List.rev !ops)
      red_infos;
    (* directives at the head of the innermost body *)
    let ii_const = Arith.const_i32 b opts.pipeline_ii in
    let directives = [ ii_const; Hls.pipeline (Op.result1 ii_const) ] in
    let directives =
      match (parts.Omp.simd, parts.Omp.simdlen) with
      | true, Some k ->
        let f = Arith.const_i32 b k in
        directives @ [ f; Hls.unroll (Op.result1 f) ]
      | true, None ->
        let f = Arith.const_i32 b 4 in
        directives @ [ f; Hls.unroll (Op.result1 f) ]
      | false, _ -> directives
    in
    (* build the scf.for nest, outermost first *)
    let rec build_nest lbs ubs steps ivs =
      match (lbs, ubs, steps, ivs) with
      | [ lb ], [ ub ], [ step ], [ iv ] ->
        let one = Arith.const_index b 1 in
        let ub_excl =
          Builder.op1 b "arith.addi"
            ~operands:[ ub; Op.result1 one ]
            Types.Index
        in
        let inner_body =
          directives @ mod_ops @ body @ [ Scf.yield () ]
        in
        let for_op =
          Op.make "scf.for"
            ~operands:[ lb; Op.result1 ub_excl; step ]
            ~regions:[ Op.region ~args:[ iv ] inner_body ]
        in
        [ one; ub_excl; for_op ]
      | lb :: lbs, ub :: ubs, step :: steps, iv :: ivs ->
        let one = Arith.const_index b 1 in
        let ub_excl =
          Builder.op1 b "arith.addi"
            ~operands:[ ub; Op.result1 one ]
            Types.Index
        in
        let inner = build_nest lbs ubs steps ivs in
        let for_op =
          Op.make "scf.for"
            ~operands:[ lb; Op.result1 ub_excl; step ]
            ~regions:[ Op.region ~args:[ iv ] (inner @ [ Scf.yield () ]) ]
        in
        [ one; ub_excl; for_op ]
      | _ ->
        raise
          (Ftn_diag.Diag.Diag_failure
             [
               Ftn_diag.Diag.error ~loc:(Op.loc op)
                 "'omp.parallel_do': bound/induction-variable rank mismatch";
             ])
    in
    let nest =
      build_nest parts.Omp.lbs parts.Omp.ubs parts.Omp.steps parts.Omp.ivs
    in
    List.rev !pre_ops @ nest @ !post_ops

let patterns options =
  [
    Rewrite.pattern ~roots:[ "omp.parallel_do" ] "parallel-do-to-scf-for"
      (fun ctx op ->
        match Omp.loop_parts op with
        | None -> None
        | Some _ ->
          Some
            (Rewrite.replace_with
               (lower_parallel_do (Rewrite.builder ctx) options op)));
    Rewrite.pattern ~roots:[ "func.func" ] "insert-hls-interfaces"
      (fun ctx fn ->
        (* func.func keeps its name across the rewrite: fire only once, on
           functions with a body and ports but no interfaces yet. *)
        if
          (not (Func_d.has_body fn))
          || Op.exists (fun o -> String.equal (Op.name o) "hls.interface") fn
        then None
        else
          let fn' = insert_interfaces (Rewrite.builder ctx) fn in
          if fn' == fn then None else Some (Rewrite.replace_with [ fn' ]));
  ]

let run ?(options = default_options) m = Rewrite.apply (patterns options) m

let pass ?options () =
  Pass.make "lower-omp-loops-to-hls" (fun m -> run ?options m)
