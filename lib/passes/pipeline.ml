(* Canned pass pipelines reproducing the paper's Figure 2 flow. *)

open Ftn_ir

type options = {
  data : Lower_omp_data.options;
  hls : Lower_omp_to_hls.options;
  canonicalize : bool;
  domains : int;
      (* 0 = legacy sequential pipelines; >= 1 routes the per-function
         device pipelines through Pass.run_pipeline_parallel (1 = the
         partitioned engine on a single domain — the determinism
         reference the multi-domain output must be byte-identical to) *)
}

let default_options =
  {
    data = Lower_omp_data.default_options;
    hls = Lower_omp_to_hls.default_options;
    canonicalize = true;
    domains = 0;
  }

let maybe_canon opts passes =
  if opts.canonicalize then passes @ [ Canonicalize.pass ] else passes

(* Core+omp module -> host module with device ops + nested fpga module. *)
let host_passes ?(options = default_options) () =
  maybe_canon options
    [
      Lower_acc_to_omp.pass;
      Lower_omp_data.pass ~options:options.data ();
      Lower_omp_target.pass;
    ]

(* Device (fpga) module -> hls dialect form. *)
let device_passes ?(options = default_options) () =
  maybe_canon options [ Lower_omp_to_hls.pass ~options:options.hls () ]

(* Device hls module -> llvm dialect (ready for LLVM-IR emission). *)
let device_llvm_passes () = [ Hls_to_func.pass; Core_to_llvm.pass ]

type compiled = {
  combined : Op.t;  (** After data+target lowering, before splitting. *)
  host : Op.t;
  device_core : Op.t option;  (** Device module at core+omp level. *)
  device_hls : Op.t option;  (** After lower-omp-loops-to-hls. *)
  device_llvm : Op.t option;  (** llvm dialect form. *)
  stages : Pass.stage_record list;
}

(* Run the full mid-end starting from a core+omp module (i.e. the output of
   Frontend.to_core). *)
let run_mid_end ?(options = default_options) ?(to_llvm = true) m =
  let all_stages = ref [] in
  let record rs = all_stages := !all_stages @ rs in
  (* The host pipeline stays sequential: before kernel outlining the
     module is a single function, so there is nothing to partition. The
     device pipelines fan per-kernel functions across domains when
     [options.domains >= 1]. *)
  let run_device passes d =
    let out, stages =
      if options.domains >= 1 then
        Pass.run_pipeline_parallel ~verify_between:true
          ~domains:options.domains passes d
      else Pass.run_pipeline ~verify_between:true passes d
    in
    (* Canonically renumber either way (renumbering is idempotent, so the
       parallel merge's own renumber is fine): the emitted device modules
       are a pure function of the input module, byte-identical whatever
       [options.domains] is. *)
    let out, _ = Op.renumber out in
    (out, stages)
  in
  let combined =
    Ftn_obs.Span.with_span ~name:"mid_end.host" (fun () ->
        let combined, stages =
          Pass.run_pipeline ~verify_between:true (host_passes ~options ()) m
        in
        record stages;
        combined)
  in
  let split =
    Ftn_obs.Span.with_span ~name:"mid_end.split_modules" (fun () ->
        Split_modules.run combined)
  in
  let device_core = split.Split_modules.device in
  let device_hls, device_llvm =
    match device_core with
    | None -> (None, None)
    | Some d ->
      let hls =
        Ftn_obs.Span.with_span ~name:"mid_end.device" (fun () ->
            let hls, stages = run_device (device_passes ~options ()) d in
            record stages;
            hls)
      in
      if to_llvm then begin
        let ll =
          Ftn_obs.Span.with_span ~name:"mid_end.device_llvm" (fun () ->
              let ll, stages = run_device (device_llvm_passes ()) hls in
              record stages;
              ll)
        in
        (Some hls, Some ll)
      end
      else (Some hls, None)
  in
  {
    combined;
    host = split.Split_modules.host;
    device_core;
    device_hls;
    device_llvm;
    stages = !all_stages;
  }
