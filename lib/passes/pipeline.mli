(** Canned pass pipelines reproducing the paper's Figure 2 flow. *)

type options = {
  data : Lower_omp_data.options;
  hls : Lower_omp_to_hls.options;
  canonicalize : bool;
  domains : int;
      (** 0 (default) keeps the legacy sequential pipelines. [n >= 1]
          routes the device pipelines through
          {!Ftn_ir.Pass.run_pipeline_parallel} over [n] domains: per-kernel
          functions are lowered independently, merged deterministically and
          canonically renumbered, so the compiled output is byte-identical
          for every [n >= 1] (and [n = 1] is the sequential reference). *)
}

val default_options : options

val host_passes : ?options:options -> unit -> Ftn_ir.Pass.t list
(** Core+omp -> host module with device ops + nested fpga module. *)

val device_passes : ?options:options -> unit -> Ftn_ir.Pass.t list
(** Device module -> hls-dialect form. *)

val device_llvm_passes : unit -> Ftn_ir.Pass.t list
(** hls form -> llvm dialect. *)

type compiled = {
  combined : Ftn_ir.Op.t;
  host : Ftn_ir.Op.t;
  device_core : Ftn_ir.Op.t option;
  device_hls : Ftn_ir.Op.t option;
  device_llvm : Ftn_ir.Op.t option;
  stages : Ftn_ir.Pass.stage_record list;
}

val run_mid_end :
  ?options:options -> ?to_llvm:bool -> Ftn_ir.Op.t -> compiled
(** Run the full mid-end from a core+omp module (Frontend.to_core output),
    verifying the IR between passes. *)
