(* Per-device circuit breaker: closed -> open on consecutive failures,
   half-open probe after a simulated-time cooldown, permanent quarantine
   after too many trips. Deterministic: state depends only on the
   sequence of (timestamp, outcome) pairs fed in. *)

type state =
  | Closed
  | Open of float
  | Half_open
  | Quarantined

type config = {
  trip_threshold : int;
  cooldown_s : float;
  flap_limit : int;
}

let default_config = { trip_threshold = 3; cooldown_s = 1e-3; flap_limit = 4 }

let parse_config spec =
  let spec = String.trim spec in
  if String.equal spec "on" || String.equal spec "" then Ok default_config
  else
    let fields = String.split_on_char ',' spec in
    List.fold_left
      (fun acc field ->
        match acc with
        | Error _ -> acc
        | Ok cfg -> (
          match String.split_on_char '=' (String.trim field) with
          | [ "trip"; v ] -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> Ok { cfg with trip_threshold = n }
            | _ -> Error (Fmt.str "breaker: bad trip count %S" v))
          | [ "cooldown"; v ] -> (
            match float_of_string_opt v with
            | Some s when s > 0.0 -> Ok { cfg with cooldown_s = s }
            | _ -> Error (Fmt.str "breaker: bad cooldown %S" v))
          | [ "flap"; v ] -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> Ok { cfg with flap_limit = n }
            | _ -> Error (Fmt.str "breaker: bad flap limit %S" v))
          | _ ->
            Error
              (Fmt.str
                 "breaker: unknown field %S (expected \
                  trip=N,cooldown=S,flap=N or \"on\")"
                 (String.trim field))))
      (Ok default_config) fields

type t = {
  device : int;
  config : config;
  on_transition :
    (device:int ->
    time_s:float ->
    from_:string ->
    to_:string ->
    trips:int ->
    unit)
    option;
  mutable state : state;
  mutable failures : int;  (* consecutive, in the current closed window *)
  mutable trips : int;
  mutable transitions : (float * string * string) list;  (* reversed *)
}

let create ?on_transition ~device config =
  if config.trip_threshold < 1 then
    invalid_arg "Breaker.create: trip_threshold < 1";
  if config.cooldown_s <= 0.0 then invalid_arg "Breaker.create: cooldown <= 0";
  if config.flap_limit < 1 then invalid_arg "Breaker.create: flap_limit < 1";
  {
    device;
    config;
    on_transition;
    state = Closed;
    failures = 0;
    trips = 0;
    transitions = [];
  }

let state t = t.state
let trips t = t.trips

let state_name = function
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"
  | Quarantined -> "quarantined"

let transition t ~now_s next =
  let from_ = state_name t.state and to_ = state_name next in
  t.state <- next;
  t.transitions <- (now_s, from_, to_) :: t.transitions;
  match t.on_transition with
  | Some f -> f ~device:t.device ~time_s:now_s ~from_ ~to_ ~trips:t.trips
  | None -> ()

let admit_time_s t =
  match t.state with
  | Closed | Half_open -> Some 0.0
  | Open until -> Some until
  | Quarantined -> None

let note_admitted t ~now_s =
  match t.state with
  | Open until when now_s >= until -> transition t ~now_s Half_open
  | _ -> ()

let trip t ~now_s =
  t.trips <- t.trips + 1;
  t.failures <- 0;
  if t.trips >= t.config.flap_limit then transition t ~now_s Quarantined
  else transition t ~now_s (Open (now_s +. t.config.cooldown_s))

let record t ~now_s ~ok =
  match t.state with
  | Quarantined -> ()
  | Half_open ->
    if ok then begin
      t.failures <- 0;
      transition t ~now_s Closed
    end
    else trip t ~now_s
  | Closed ->
    if ok then t.failures <- 0
    else begin
      t.failures <- t.failures + 1;
      if t.failures >= t.config.trip_threshold then trip t ~now_s
    end
  | Open _ ->
    (* A job admitted before the trip can still report in; it only
       counts against the next closed window if it failed. *)
    if not ok then t.failures <- t.failures + 1

type snapshot = {
  bk_device : int;
  bk_state : string;
  bk_failures : int;
  bk_trips : int;
  bk_transitions : (float * string * string) list;
}

let snapshot t =
  {
    bk_device = t.device;
    bk_state = state_name t.state;
    bk_failures = t.failures;
    bk_trips = t.trips;
    bk_transitions = List.rev t.transitions;
  }

let pp_snapshot fmt s =
  Fmt.pf fmt "breaker d%d: %s, %d trip%s%s" s.bk_device s.bk_state s.bk_trips
    (if s.bk_trips = 1 then "" else "s")
    (if s.bk_transitions = [] then ""
     else
       Fmt.str " (%s)"
         (String.concat ", "
            (List.map
               (fun (t, f, to_) -> Fmt.str "%s->%s@%.3fus" f to_ (t *. 1e6))
               s.bk_transitions)))
