(** Per-device circuit breaker for the job queue.

    Health is fed by job outcomes on the device: a run that needed
    retries, drained away, degraded to the host CPU or saw injected
    faults counts as a failure. [trip_threshold] consecutive failures
    open the breaker for [cooldown_s] of simulated time; the first job
    admitted after the cooldown runs as a half-open probe, whose outcome
    either closes the breaker again or re-opens it. A breaker that trips
    [flap_limit] times is quarantined permanently — a flapping board is
    worse than a dead one.

    The breaker is purely a function of the (deterministic) sequence of
    [record]/[note_admitted] calls and simulated timestamps, so the same
    job list and fault seed always produce the same transition trace. *)

type state =
  | Closed
  | Open of float  (** Rejecting work until the given simulated time. *)
  | Half_open  (** Cooldown elapsed; one probe job decides the outcome. *)
  | Quarantined  (** Flapped out permanently. *)

type config = {
  trip_threshold : int;  (** Consecutive failures that open the breaker. *)
  cooldown_s : float;  (** Open duration before a half-open probe. *)
  flap_limit : int;  (** Trips after which the device is quarantined. *)
}

val default_config : config
(** trip after 3 consecutive failures, 1 ms cooldown, quarantine on the
    4th trip. *)

val parse_config : string -> (config, string) result
(** ["on"] for {!default_config}, or comma-separated
    [trip=N,cooldown=SECONDS,flap=N] overriding individual fields. *)

type t

type snapshot = {
  bk_device : int;
  bk_state : string;
  bk_failures : int;  (** Consecutive failures in the current window. *)
  bk_trips : int;
  bk_transitions : (float * string * string) list;
      (** [(time_s, from, to)] in program order. *)
}

val create :
  ?on_transition:
    (device:int -> time_s:float -> from_:string -> to_:string -> trips:int -> unit) ->
  device:int ->
  config ->
  t

val state : t -> state
val state_name : state -> string
val trips : t -> int

val admit_time_s : t -> float option
(** Earliest simulated time the device may accept a job: [Some 0.]
    when closed or half-open, [Some until] while open (the job admitted
    at [until] becomes the probe), [None] when quarantined. Does not
    mutate the breaker. *)

val note_admitted : t -> now_s:float -> unit
(** Tell the breaker a job was placed on its device at [now_s]; an open
    breaker whose cooldown has elapsed moves to half-open. *)

val record : t -> now_s:float -> ok:bool -> unit
(** Feed the outcome of a job that ran on the device. *)

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
