(* Device data environment: named, reference-counted buffers per memory
   space — the runtime realisation of the device dialect's data-management
   semantics (paper, Section 3). Buffers persist after their count drops to
   zero so a later allocation of the same name reuses the storage (the
   common pattern in SGESL, where the same arrays are remapped on every
   outer iteration); only fresh storage pays the buffer-creation overhead. *)

open Ftn_interp

type entry = {
  mutable buffer : Rtval.buffer option;
  mutable refcount : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;  (** Keyed "space:name". *)
}

exception Device_data_error of string

let create () = { entries = Hashtbl.create 16 }

let key ~name ~memory_space = Fmt.str "%d:%s" memory_space name

let find t ~name ~memory_space =
  Hashtbl.find_opt t.entries (key ~name ~memory_space)

let get_entry t ~name ~memory_space =
  let k = key ~name ~memory_space in
  match Hashtbl.find_opt t.entries k with
  | Some e -> e
  | None ->
    let e = { buffer = None; refcount = 0 } in
    Hashtbl.replace t.entries k e;
    e

(* Allocate (or reuse) the buffer for [name]; returns the buffer and
   whether fresh storage was created (for timing). *)
let alloc t ~name ~memory_space ~elt ~shape =
  let e = get_entry t ~name ~memory_space in
  match e.buffer with
  | Some b when b.Rtval.shape = shape && Ftn_ir.Types.equal b.Rtval.elt elt ->
    (b, false)
  | Some _ | None ->
    let b = Rtval.alloc_buffer ~memory_space ~label:name elt shape in
    e.buffer <- Some b;
    (b, true)

let lookup t ~name ~memory_space =
  match find t ~name ~memory_space with
  | Some { buffer = Some b; _ } -> Some b
  | Some { buffer = None; _ } | None -> None

let lookup_exn t ~name ~memory_space =
  match lookup t ~name ~memory_space with
  | Some b -> b
  | None ->
    raise
      (Device_data_error
         (Fmt.str "no device data named %S in memory space %d" name
            memory_space))

let acquire t ~name ~memory_space =
  let e = get_entry t ~name ~memory_space in
  e.refcount <- e.refcount + 1

(* Over-releasing (double device.data_release, or releasing a name that was
   never acquired) indicates a refcount bug in the lowered data-environment
   sequence. The count still clamps at zero so the environment stays usable,
   but the event is surfaced instead of masked. *)
let over_release ~name ~memory_space reason =
  Ftn_obs.Metrics.incr "data_env.over_release";
  Ftn_diag.Diag_engine.warning Ftn_diag.Diag_engine.default
    (Fmt.str "release of device data %S in memory space %d %s" name
       memory_space reason)

let release t ~name ~memory_space =
  match find t ~name ~memory_space with
  | Some e when e.refcount > 0 -> e.refcount <- e.refcount - 1
  | Some _ ->
    over_release ~name ~memory_space
      "whose reference count is already 0 (double release?)"
  | None -> over_release ~name ~memory_space "that was never acquired"

let exists t ~name ~memory_space =
  match find t ~name ~memory_space with
  | Some e -> e.refcount > 0
  | None -> false

let refcount t ~name ~memory_space =
  match find t ~name ~memory_space with Some e -> e.refcount | None -> 0

let live_names t =
  Hashtbl.fold
    (fun k e acc -> if e.refcount > 0 then k :: acc else acc)
    t.entries []
  |> List.sort String.compare

(* Drop the storage of zero-refcount entries — the recovery action for
   device allocation failures (freeing unpinned buffers is how a real
   runtime answers CL_MEM_OBJECT_ALLOCATION_FAILURE). [except] protects
   the entry currently being (re)allocated so the victim is never the
   buffer we are trying to produce. Evicted names lose their contents:
   a later allocation recreates fresh zeroed storage. *)
let evict_unreferenced ?except t =
  let keep =
    match except with
    | Some (name, memory_space) -> key ~name ~memory_space
    | None -> ""
  in
  Hashtbl.fold
    (fun k e n ->
      if k <> keep && e.refcount = 0 && e.buffer <> None then begin
        e.buffer <- None;
        n + 1
      end
      else n)
    t.entries 0

let leaks t =
  Hashtbl.fold
    (fun k e acc -> if e.refcount > 0 then (k, e.refcount) :: acc else acc)
    t.entries []
  |> List.sort compare

(* Deterministic dump of the complete environment — keys, counts, element
   types, shapes and exact cell contents (hex floats) — so differential
   tests can require byte-identical state across fault-free and
   transient-fault runs. *)
let snapshot t =
  let buf = Buffer.create 256 in
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.entries []
  |> List.sort compare
  |> List.iter (fun (k, e) ->
         Buffer.add_string buf (Fmt.str "%s rc=%d" k e.refcount);
         (match e.buffer with
         | None -> Buffer.add_string buf " (no storage)"
         | Some b ->
           Buffer.add_string buf
             (Fmt.str " %s[%s]"
                (Ftn_ir.Types.to_string b.Rtval.elt)
                (String.concat "x" (List.map string_of_int b.Rtval.shape)));
           (match b.Rtval.mem with
           | Rtval.F fs ->
             Array.iter (fun f -> Buffer.add_string buf (Fmt.str " %h" f)) fs
           | Rtval.I is ->
             Array.iter (fun i -> Buffer.add_string buf (Fmt.str " %d" i)) is));
         Buffer.add_char buf '\n');
  Buffer.contents buf
