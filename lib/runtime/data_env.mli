(** Device data environment: named, reference-counted buffers per memory
    space — the runtime realisation of the device dialect's data-management
    semantics (paper, Section 3).

    Buffers persist after their count drops to zero so a later allocation
    of the same name reuses the storage (SGESL remaps the same arrays every
    outer iteration); only fresh storage pays the creation overhead. *)

type t

exception Device_data_error of string

val create : unit -> t

val alloc :
  t ->
  name:string ->
  memory_space:int ->
  elt:Ftn_ir.Types.t ->
  shape:int list ->
  Ftn_interp.Rtval.buffer * bool
(** Allocate or reuse the buffer registered under [name]; the flag is true
    when fresh storage was created (for timing). *)

val lookup :
  t -> name:string -> memory_space:int -> Ftn_interp.Rtval.buffer option

val lookup_exn :
  t -> name:string -> memory_space:int -> Ftn_interp.Rtval.buffer
(** Raises {!Device_data_error} when no buffer is registered. *)

val acquire : t -> name:string -> memory_space:int -> unit
(** Increment the identifier's reference counter. *)

val release : t -> name:string -> memory_space:int -> unit
(** Decrement (floored at zero). *)

val exists : t -> name:string -> memory_space:int -> bool
(** Counter > 0 — the semantics of [device.data_check_exists]. *)

val refcount : t -> name:string -> memory_space:int -> int

val live_names : t -> string list
(** Sorted ["space:name"] keys with a positive counter. *)

val evict_unreferenced : ?except:string * int -> t -> int
(** Drop the storage of every zero-refcount entry — the recovery action
    for device allocation failures. [except] is a [(name, memory_space)]
    pair protecting the entry being (re)allocated. Returns the number of
    buffers evicted; evicted names lose their contents. *)

val leaks : t -> (string * int) list
(** Sorted ["space:name"] keys still holding a positive counter — at
    teardown these are reference-count leaks in the lowered
    data-environment sequence. *)

val snapshot : t -> string
(** Deterministic dump of keys, counts, element types, shapes and exact
    cell contents (hex floats), for differential tests that require
    byte-identical state between two runs. *)
