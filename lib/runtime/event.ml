(* OpenCL-style events for the async host runtime. Every simulated
   device operation — allocation, DMA transfer, kernel execution, launch
   overhead, retry backoff — is an event scheduled on one engine lane of
   one simulated device. An event knows when the host submitted it, when
   the device picked it up (after its lane drained and its dependencies
   finished) and when it retired; the gap between submission and pickup
   is the operation's true queue wait.

   Events are created by {!Scheduler.submit}; this module only defines
   the data and derived measures so the scheduler, the executor and the
   tests agree on one vocabulary. *)

(* Engine lanes of a simulated device. Transfers run on duplex DMA
   engines (h2d and d2h are independent, as on PCIe), kernels and their
   launch overhead on the compute engine, and control-plane work
   (allocations, retry backoff) on its own lane so it never blocks an
   in-flight copy. *)
type lane =
  | Copy_in
  | Copy_out
  | Compute
  | Ctrl

let lane_code = function
  | Copy_in -> "copy_in"
  | Copy_out -> "copy_out"
  | Compute -> "compute"
  | Ctrl -> "ctrl"

type t = {
  ev_id : int;  (* unique within one scheduler *)
  ev_device : int;
  ev_lane : lane;
  ev_track : string;  (* "kernel" | "transfer" | "overhead" | "fallback" *)
  ev_label : string;
  ev_submit_s : float;  (* host enqueued the operation *)
  ev_start_s : float;  (* device picked it up *)
  ev_finish_s : float;
  ev_deps : int list;  (* ids of events this one waited on *)
}

let queue_wait_s ev = ev.ev_start_s -. ev.ev_submit_s
let duration_s ev = ev.ev_finish_s -. ev.ev_start_s

(* Two events overlap when their device-active intervals intersect with
   positive measure — the witness the transfer/compute overlap tests use. *)
let overlaps a b =
  Float.min a.ev_finish_s b.ev_finish_s
  -. Float.max a.ev_start_s b.ev_start_s
  > 0.0

let pp fmt ev =
  Fmt.pf fmt "ev%d d%d %s %-10s %s [%.3f..%.3f us, submitted %.3f us]"
    ev.ev_id ev.ev_device (lane_code ev.ev_lane) ev.ev_track ev.ev_label
    (ev.ev_start_s *. 1e6) (ev.ev_finish_s *. 1e6) (ev.ev_submit_s *. 1e6)
