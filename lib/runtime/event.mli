(** OpenCL-style events for the async host runtime: every simulated
    device operation is an event scheduled on one engine lane of one
    simulated device, carrying its submit/pickup/retire times. Events
    are created by {!Scheduler.submit}. *)

(** Engine lanes of a simulated device: duplex DMA engines for
    transfers, a compute engine for kernels and launch overhead, and a
    control-plane lane for allocations and retry backoff. *)
type lane =
  | Copy_in
  | Copy_out
  | Compute
  | Ctrl

val lane_code : lane -> string

type t = {
  ev_id : int;  (** Unique within one scheduler. *)
  ev_device : int;
  ev_lane : lane;
  ev_track : string;
      (** Timing track: "kernel", "transfer", "overhead" or "fallback". *)
  ev_label : string;
  ev_submit_s : float;  (** When the host enqueued the operation. *)
  ev_start_s : float;  (** When the device picked it up. *)
  ev_finish_s : float;
  ev_deps : int list;  (** Ids of the events this one waited on. *)
}

val queue_wait_s : t -> float
(** Pickup minus submission on the owning device's timeline — the
    operation's true queue wait. *)

val duration_s : t -> float

val overlaps : t -> t -> bool
(** Whether the two device-active intervals intersect with positive
    measure. *)

val pp : Format.formatter -> t -> unit
