(* Host-module executor: interprets the host module produced by the
   pipeline, giving the device dialect its runtime semantics against the
   simulated FPGA. Kernels named by device.kernel_create are executed
   functionally through the interpreter (so results are real numbers) while
   the timing model charges the simulated device timeline for transfers,
   launches, allocations and kernel cycles. *)

open Ftn_ir
open Ftn_interp
open Ftn_hlsim

exception Runtime_error of string

type kernel_handle = {
  kh_design : Bitstream.kernel_design;
  kh_args : Rtval.t list;
}

type context = {
  spec : Fpga_spec.t;
  bitstream : Bitstream.t;
  data : Data_env.t;
  trace : Trace.t;
  handles : (int, kernel_handle) Hashtbl.t;
  mutable next_handle : int;
  obs : Ftn_obs.Span.t;
      (** Span collector (the ambient one at context creation): every
          simulated charge lands here as a sim-clock span. *)
  obs_base : int;
      (** First span id belonging to this context, so timing sums ignore
          spans recorded by earlier work in the same collector. *)
  mutable sim_now_s : float;
      (** Position on the simulated device timeline — the running total
          of every charge, i.e. the device time so far. *)
  mutable kernel_time_s : float;
      (** Running per-track totals, updated by [charge] so timing queries
          are O(1); the span fold remains as a test cross-check. *)
  mutable transfer_time_s : float;
  mutable overhead_time_s : float;
  mutable kernel_state : Interp.state option;
      (** Lazily-created interpreter used when kernels are launched through
          the host API rather than from an interpreted host module. *)
  engine : Interp.engine;
  sink : Intrinsics.sink;
}

type result = {
  output : string;
  device_time_s : float;
  kernel_time_s : float;
  transfer_time_s : float;
  overhead_time_s : float;
  kernel_launches : int;
  bytes_transferred : int;
  trace : Trace.t;
  data : Data_env.t;
}

let create_context ?(spec = Fpga_spec.u280) ?(echo = false) ?engine
    bitstream =
  let obs = Ftn_obs.Span.current () in
  {
    spec;
    bitstream;
    data = Data_env.create ();
    trace = Trace.create ();
    handles = Hashtbl.create 8;
    next_handle = 0;
    obs;
    obs_base = Ftn_obs.Span.next_id obs;
    sim_now_s = 0.0;
    kernel_time_s = 0.0;
    transfer_time_s = 0.0;
    overhead_time_s = 0.0;
    kernel_state = None;
    engine =
      (match engine with Some e -> e | None -> Interp.default_engine ());
    sink = Intrinsics.make_sink ~echo ();
  }

(* Charge [t] simulated seconds to a track ("kernel", "transfer" or
   "overhead"): records a span at the current device-timeline position,
   advances the timeline and bumps the track's running total. Totals
   accumulate one addition per charge, in charge order — the same float
   additions the span fold over this context performs. *)
let charge (ctx : context) ~track ~name ?(attrs = []) t =
  ignore
    (Ftn_obs.Span.record_sim ~collector:ctx.obs
       ~attrs:(("track", track) :: attrs)
       ~name ~start_s:ctx.sim_now_s ~dur_s:t ());
  ctx.sim_now_s <- ctx.sim_now_s +. t;
  match track with
  | "kernel" -> ctx.kernel_time_s <- ctx.kernel_time_s +. t
  | "transfer" -> ctx.transfer_time_s <- ctx.transfer_time_s +. t
  | "overhead" -> ctx.overhead_time_s <- ctx.overhead_time_s +. t
  | _ -> ()

let charge_overhead (ctx : context) ~name ?attrs t =
  charge ctx ~track:"overhead" ~name ?attrs t

let charge_transfer (ctx : context) ~name ?attrs t =
  charge ctx ~track:"transfer" ~name ?attrs t

let charge_kernel (ctx : context) ~name ?attrs t =
  charge ctx ~track:"kernel" ~name ?attrs t

let sim_spans (ctx : context) =
  List.filter
    (fun (sp : Ftn_obs.Span.span) ->
      sp.Ftn_obs.Span.id >= ctx.obs_base
      && sp.Ftn_obs.Span.clock = Ftn_obs.Span.Sim)
    (Ftn_obs.Span.spans ctx.obs)

(* Span-fold timing, kept as a cross-check for the running totals (the
   tests compare the two). *)
let track_time_from_spans (ctx : context) track =
  List.fold_left
    (fun acc (sp : Ftn_obs.Span.span) ->
      if Ftn_obs.Span.attr sp "track" = Some track then
        acc +. sp.Ftn_obs.Span.dur_s
      else acc)
    0.0 (sim_spans ctx)

let device_time (ctx : context) = ctx.sim_now_s
let kernel_time (ctx : context) = ctx.kernel_time_s
let transfer_time (ctx : context) = ctx.transfer_time_s
let overhead_time (ctx : context) = ctx.overhead_time_s

let name_and_space op =
  match Op.string_attr op "name" with
  | Some name ->
    (name, Option.value ~default:0 (Op.int_attr op "memory_space"))
  | None -> raise (Runtime_error (Op.name op ^ " without a name attribute"))

let resolve_shape ~op_name mi dynamic =
  let wanted =
    List.length
      (List.filter (fun d -> d = Types.Dynamic) mi.Types.shape)
  in
  let supplied = List.length dynamic in
  if supplied <> wanted then
    (* Surplus extents mean the bounds lowering produced sizes the type
       cannot absorb: wrong data if silently dropped, so fail loudly. *)
    raise
      (Runtime_error
         (Fmt.str
            "%s: %d dynamic extents supplied for a memref type with %d \
             dynamic dimensions"
            op_name supplied wanted));
  let rec go shape dynamic =
    match (shape, dynamic) with
    | [], _ -> []
    | Types.Static n :: rest, dynamic -> n :: go rest dynamic
    | Types.Dynamic :: rest, d :: dynamic -> d :: go rest dynamic
    | Types.Dynamic :: _, [] ->
      raise (Runtime_error ("missing dynamic size for " ^ op_name))
  in
  go mi.Types.shape dynamic

(* Execute one kernel: run its function body in the interpreter with loop
   statistics recording, then convert the statistics to cycles. *)
let execute_kernel (ctx : context) state (design : Bitstream.kernel_design) args =
  let stats = Timing.make_stats () in
  let saved = state.Interp.on_loop in
  state.Interp.on_loop <-
    Some (fun ~loop_key ~iters -> Timing.record_loop stats ~loop_key ~iters);
  Fun.protect
    ~finally:(fun () -> state.Interp.on_loop <- saved)
    (fun () ->
      ignore (Interp.call_function state design.Bitstream.kd_function args));
  let t = Timing.kernel_time_s ctx.spec design.Bitstream.kd_schedule stats in
  let overhead = Timing.launch_overhead_s ctx.spec in
  charge_kernel ctx ~name:design.Bitstream.kd_name
    ~attrs:[ ("kernel", design.Bitstream.kd_name) ]
    t;
  charge_overhead ctx ~name:"launch_overhead"
    ~attrs:[ ("kernel", design.Bitstream.kd_name) ]
    overhead;
  Ftn_obs.Metrics.incr "device.kernel_launches";
  Ftn_obs.Log.debugf "launch %s: %.3f us kernel + %.3f us overhead"
    design.Bitstream.kd_name (t *. 1e6) (overhead *. 1e6);
  Trace.record ctx.trace
    (Trace.Launch
       {
         kernel = design.Bitstream.kd_name;
         kernel_time_s = t;
         overhead_s = overhead;
       })

(* --- host API: the OpenCL-level operations a (hand-written) host
   program performs against the simulated device. The interpreter handler
   below routes the device dialect through these same functions. --- *)

let api_alloc (ctx : context) ~name ~memory_space ~elt ~shape =
  let buffer, fresh =
    Data_env.alloc ctx.data ~name ~memory_space ~elt ~shape
  in
  if fresh then begin
    charge_overhead ctx ~name:("alloc:" ^ name)
      ~attrs:[ ("buffer", name);
               ("bytes", string_of_int (Rtval.byte_size buffer)) ]
      (Timing.alloc_overhead_s ctx.spec);
    Ftn_obs.Metrics.incr "device.allocs";
    Ftn_obs.Metrics.incr ~by:(Rtval.byte_size buffer) "device.bytes_allocated";
    Trace.record ctx.trace
      (Trace.Alloc
         {
           name;
           bytes = Rtval.byte_size buffer;
           time_s = Timing.alloc_overhead_s ctx.spec;
         })
  end;
  buffer

let api_transfer (ctx : context) ~src ~dst =
  if src.Rtval.memory_space <> dst.Rtval.memory_space then begin
    let bytes = min (Rtval.byte_size src) (Rtval.byte_size dst) in
    let t = Timing.transfer_time_s ctx.spec ~bytes in
    let direction =
      if dst.Rtval.memory_space > 0 then Trace.Host_to_device
      else Trace.Device_to_host
    in
    (* Identify the moved array by the device-side buffer's label (named
       by the data environment), falling back to the host side's. *)
    let device_side, host_side =
      if dst.Rtval.memory_space > 0 then (dst, src) else (src, dst)
    in
    let name =
      if device_side.Rtval.label <> "" then device_side.Rtval.label
      else host_side.Rtval.label
    in
    let dir_str =
      match direction with Trace.Host_to_device -> "h2d" | _ -> "d2h"
    in
    charge_transfer ctx
      ~name:(dir_str ^ ":" ^ name)
      ~attrs:
        [ ("buffer", name); ("direction", dir_str);
          ("bytes", string_of_int bytes) ]
      t;
    Ftn_obs.Metrics.incr ~by:bytes
      (match direction with
      | Trace.Host_to_device -> "device.bytes_h2d"
      | Trace.Device_to_host -> "device.bytes_d2h");
    Trace.record ctx.trace (Trace.Transfer { name; direction; bytes; time_s = t })
  end;
  Rtval.copy_into ~src ~dst

let kernel_interp_state (ctx : context) =
  match ctx.kernel_state with
  | Some s -> s
  | None ->
    let device_module =
      Op.module_op
        (List.map
           (fun k -> k.Bitstream.kd_function)
           ctx.bitstream.Bitstream.kernels)
    in
    let s =
      Interp.make
        ~handlers:
          [ Intrinsics.print_handler ctx.sink;
            Intrinsics.runtime_library_handler ]
        ~engine:ctx.engine [ device_module ]
    in
    ctx.kernel_state <- Some s;
    s

let api_launch (ctx : context) ~kernel args =
  match Bitstream.find_kernel ctx.bitstream kernel with
  | Some design -> execute_kernel ctx (kernel_interp_state ctx) design args
  | None ->
    raise
      (Runtime_error
         (Fmt.str "kernel %s not found in bitstream %s" kernel
            ctx.bitstream.Bitstream.xclbin_name))

let summary (ctx : context) =
  (device_time ctx, kernel_time ctx, transfer_time ctx, overhead_time ctx)

let device_domain =
  Interp.Names
    [
      "device.alloc"; "device.lookup"; "device.data_check_exists";
      "device.data_acquire"; "device.data_release"; "device.counter_get";
      "device.kernel_create"; "device.kernel_launch"; "device.kernel_wait";
      "memref.dma_start";
    ]

(* The interpreter handler implementing device.* ops and intercepting DMA
   transfers that touch device memory. *)
let device_handler (ctx : context) : Interp.handler =
  Interp.handler ~domain:device_domain @@ fun state _frame op operands ->
  match Op.name op with
  | "device.alloc" ->
    let name, memory_space = name_and_space op in
    (match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let shape =
        resolve_shape ~op_name:(Op.name op) mi (List.map Rtval.as_int operands)
      in
      let buffer =
        api_alloc ctx ~name ~memory_space ~elt:mi.Types.elt ~shape
      in
      Some [ Rtval.Buf buffer ]
    | _ -> raise (Runtime_error "device.alloc must produce a memref"))
  | "device.lookup" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Buf (Data_env.lookup_exn ctx.data ~name ~memory_space) ]
  | "device.data_check_exists" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Bool (Data_env.exists ctx.data ~name ~memory_space) ]
  | "device.data_acquire" ->
    let name, memory_space = name_and_space op in
    Data_env.acquire ctx.data ~name ~memory_space;
    Some []
  | "device.data_release" ->
    let name, memory_space = name_and_space op in
    Data_env.release ctx.data ~name ~memory_space;
    Some []
  | "device.counter_get" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Int (Data_env.refcount ctx.data ~name ~memory_space) ]
  | "device.kernel_create" -> (
    match Op.symbol_attr op "device_function" with
    | Some fname -> (
      match Bitstream.find_kernel ctx.bitstream fname with
      | Some design ->
        let h = ctx.next_handle in
        ctx.next_handle <- h + 1;
        Hashtbl.replace ctx.handles h { kh_design = design; kh_args = operands };
        Some [ Rtval.Handle h ]
      | None ->
        raise
          (Runtime_error
             (Fmt.str "kernel %s not found in bitstream %s" fname
                ctx.bitstream.Bitstream.xclbin_name)))
    | None ->
      raise (Runtime_error "device.kernel_create without device_function"))
  | "device.kernel_launch" -> (
    match operands with
    | [ Rtval.Handle h ] ->
      (match Hashtbl.find_opt ctx.handles h with
      | Some kh -> execute_kernel ctx state kh.kh_design kh.kh_args
      | None -> raise (Runtime_error "launch of unknown kernel handle"));
      Some []
    | _ -> raise (Runtime_error "device.kernel_launch expects a handle"))
  | "device.kernel_wait" -> Some []
  | "memref.dma_start" -> (
    match operands with
    | [ src; dst ] ->
      api_transfer ctx ~src:(Rtval.as_buffer src) ~dst:(Rtval.as_buffer dst);
      Some []
    | _ -> None)
  | _ -> None

(* Build a result record from an API-driven context (hand-written host). *)
let result_of_context (ctx : context) =
  {
    output = Intrinsics.contents ctx.sink;
    device_time_s = device_time ctx;
    kernel_time_s = kernel_time ctx;
    transfer_time_s = transfer_time ctx;
    overhead_time_s = overhead_time ctx;
    kernel_launches = Trace.count_launches ctx.trace;
    bytes_transferred = Trace.bytes_transferred ctx.trace;
    trace = ctx.trace;
    data = ctx.data;
  }

(* Run the host module's main (or a named entry) against a bitstream. *)
let run ?spec ?(echo = false) ?entry ?(args = []) ?engine ~host ~bitstream
    () =
  let ctx = create_context ?spec ~echo ?engine bitstream in
  let handlers =
    [
      device_handler ctx;
      Intrinsics.print_handler ctx.sink;
      Intrinsics.runtime_library_handler;
    ]
  in
  let state = Interp.make ~handlers ~engine:ctx.engine [ host ] in
  (match entry with
  | Some entry -> ignore (Interp.run state ~entry ~args)
  | None -> (
    match Interp.main_function host with
    | Some fn -> ignore (Interp.call_function state fn args)
    | None -> raise (Runtime_error "host module has no main program")));
  Ftn_obs.Metrics.incr ~by:state.Interp.steps "interp.steps";
  result_of_context ctx

(* CPU reference: run the core-level module with sequential OpenMP
   semantics (no device). *)
let run_cpu ?(echo = false) ?entry ?(args = []) ?engine core_module =
  let sink = Intrinsics.make_sink ~echo () in
  let handlers =
    [ Intrinsics.print_handler sink; Intrinsics.runtime_library_handler ]
  in
  let state = Interp.make ~handlers ?engine [ core_module ] in
  (match entry with
  | Some entry -> ignore (Interp.run state ~entry ~args)
  | None -> (
    match Interp.main_function core_module with
    | Some fn -> ignore (Interp.call_function state fn args)
    | None -> raise (Runtime_error "module has no main program")));
  Ftn_obs.Metrics.incr ~by:state.Interp.steps "interp.steps";
  (Intrinsics.contents sink, state.Interp.steps)
