(* Host-module executor: interprets the host module produced by the
   pipeline, giving the device dialect its runtime semantics against the
   simulated FPGA. Kernels named by device.kernel_create are executed
   functionally through the interpreter (so results are real numbers) while
   the timing model charges the simulated device timeline for transfers,
   launches, allocations and kernel cycles.

   Timing is event-based and asynchronous: every charge becomes an
   {!Event.t} scheduled on one engine lane of the context's simulated
   device (see {!Scheduler}), so several contexts sharing a scheduler
   queue against each other and overlap transfers with compute.
   device.kernel_launch is a true async enqueue — it returns without
   advancing the host's timeline cursor — and device.kernel_wait
   genuinely blocks: the cursor jumps to the launch's completion event,
   and waiting on an unknown, foreign or never-launched handle raises a
   structured Invalid_host error. A single chained program on a fresh
   scheduler sees timings bit-identical to the old synchronous model.

   The executor is fault-tolerant: an optional Fault.plan injects
   deterministic alloc/transfer/launch failures, which the retry machinery
   absorbs (exponential backoff charged to the simulated overhead track,
   eviction after device OOM, host-CPU fallback for kernels that fail
   persistently). With multiple devices a persistently failing kernel
   first drains to a healthy peer — the device is marked failed, the
   kernel's buffers are re-staged at honest DMA cost and the attempt is
   retried there — and only degrades to the CPU when no peer is left.
   All runtime errors are the structured Fault.Error. *)

open Ftn_ir
open Ftn_interp
open Ftn_hlsim
module Fault = Ftn_fault.Fault
module Injector = Ftn_fault.Injector

type kernel_handle = {
  kh_design : Bitstream.kernel_design;
  kh_args : Rtval.t list;
}

(* Kernel handles are allocated from a process-wide counter so a handle
   leaked from one context can never collide with one minted by another
   — which is what lets kernel_wait distinguish "foreign" from "mine". *)
let handle_counter = ref 0

type context = {
  model : Device_model.t;
      (** Timing model carried by the bitstream: kernels are always timed
          with the model of the device they were compiled for. *)
  bitstream : Bitstream.t;
  data : Data_env.t;
  trace : Trace.t;
  handles : (int, kernel_handle) Hashtbl.t;
  launched : (int, Event.t) Hashtbl.t;
      (** Completion event of each launched kernel handle — what
          device.kernel_wait blocks on. *)
  obs : Ftn_obs.Span.t;
      (** Span collector (the ambient one at context creation): every
          simulated charge lands here as a sim-clock span. *)
  obs_base : int;
      (** First span id belonging to this context, so timing sums ignore
          spans recorded by earlier work in the same collector. *)
  sched : Scheduler.t;
  mutable device : Scheduler.device;
      (** Current placement; a drain after a persistent device fault
          migrates the context to a healthy peer. *)
  mutable cursor_s : float;
      (** The host program's position on the simulated timeline: where
          the next operation is submitted. Blocking operations advance
          it to their finish; async launches do not. *)
  mutable charged_s : float;
      (** Sum of every charge — the context's device time (busy time,
          not makespan), accumulated in charge order exactly like the
          old synchronous timeline. *)
  mutable pending : Event.t list;
      (** Completion events of async launches not yet waited on;
          transfers depend on them (a DMA must not start before the
          kernel producing or consuming its buffer retires). *)
  mutable kernel_time_s : float;
      (** Running per-track totals, updated by [charge] so timing queries
          are O(1); the span fold remains as a test cross-check. *)
  mutable transfer_time_s : float;
  mutable overhead_time_s : float;
  mutable fallback_time_s : float;
  mutable kernel_state : Interp.state option;
      (** Lazily-created interpreter used when kernels are launched through
          the host API rather than from an interpreted host module. *)
  engine : Interp.engine;
  sink : Intrinsics.sink;
  diag : Ftn_diag.Diag_engine.t;
  retry : Fault.retry_policy;
  injector : Injector.t option;
  mutable cur_loc : Ftn_diag.Loc.t;
      (** Location of the device op currently executing, so recovery
          warnings point at the launching source line. *)
  mutable cur_loc_str : string;
      (** [cur_loc] pre-rendered for flight-recorder entries ([""] when
          unknown) — rendered once per location change, not per event. *)
  mutable degraded : bool;
      (** This context ran a kernel on the host CPU. Per-job, not
          per-device: a peer's fallback never marks this context. *)
  mutable drained : bool;
  mutable retries : int;
  mutable cpu_fallbacks : int;
  cus : Cu_stats.t;
      (** This context's compute-unit accounting; the owning device
          keeps its own cross-context table in [device.dev_cus]. *)
}

type result = {
  output : string;
  device_time_s : float;
  kernel_time_s : float;
  transfer_time_s : float;
  overhead_time_s : float;
  fallback_time_s : float;
  kernel_launches : int;
  bytes_transferred : int;
  degraded : bool;
  drained : bool;
  retries : int;
  cpu_fallbacks : int;
  faults_injected : int;
  device : int;
  finish_s : float;
  trace : Trace.t;
  data : Data_env.t;
  cus : Cu_stats.snapshot list;
}

let create_context ?(echo = false) ?engine
    ?(diag = Ftn_diag.Diag_engine.default) ?faults
    ?(retry = Fault.default_retry) ?sched ?device ?(start_s = 0.0) bitstream =
  let obs = Ftn_obs.Span.current () in
  let sched =
    match sched with Some s -> s | None -> Scheduler.create ()
  in
  let device =
    match device with Some d -> d | None -> Scheduler.pick_device sched
  in
  device.Scheduler.dev_jobs <- device.Scheduler.dev_jobs + 1;
  {
    model = bitstream.Bitstream.model;
    bitstream;
    data = Data_env.create ();
    trace = Trace.create ();
    handles = Hashtbl.create 8;
    launched = Hashtbl.create 8;
    obs;
    obs_base = Ftn_obs.Span.next_id obs;
    sched;
    device;
    cursor_s = start_s;
    charged_s = 0.0;
    pending = [];
    kernel_time_s = 0.0;
    transfer_time_s = 0.0;
    overhead_time_s = 0.0;
    fallback_time_s = 0.0;
    kernel_state = None;
    engine =
      (match engine with Some e -> e | None -> Interp.default_engine ());
    sink = Intrinsics.make_sink ~echo ();
    diag;
    retry;
    injector = Option.map Injector.create faults;
    cur_loc = Ftn_diag.Loc.unknown;
    cur_loc_str = "";
    degraded = false;
    drained = false;
    retries = 0;
    cpu_fallbacks = 0;
    cus = Cu_stats.create ();
  }

let context_device (ctx : context) = ctx.device
let context_scheduler (ctx : context) = ctx.sched

(* Charge [t] simulated seconds to a track ("kernel", "transfer",
   "overhead" or "fallback"): schedule an event on [lane] of the
   context's device (submitted at the cursor unless [submit_s] says the
   host enqueued it earlier), record a span at the event's scheduled
   start and bump the track's running total. Totals accumulate one
   addition per charge, in charge order — the same float additions the
   span fold over this context performs. The caller decides whether the
   operation blocks (advances the cursor to the event's finish). *)
let charge (ctx : context) ~lane ~track ~name ?(attrs = []) ?submit_s
    ?(deps = []) t =
  let submit_s = Option.value ~default:ctx.cursor_s submit_s in
  let ev =
    Scheduler.submit ctx.sched ~device:ctx.device ~lane ~track ~label:name
      ~submit_s ~ready_s:ctx.cursor_s ~deps ~dur_s:t ()
  in
  ignore
    (Ftn_obs.Span.record_sim ~collector:ctx.obs
       ~attrs:
         (("track", track)
         :: ("device", string_of_int ctx.device.Scheduler.dev_id)
         :: attrs)
       ~name ~start_s:ev.Event.ev_start_s ~dur_s:t ());
  ctx.charged_s <- ctx.charged_s +. t;
  (match track with
  | "kernel" -> ctx.kernel_time_s <- ctx.kernel_time_s +. t
  | "transfer" -> ctx.transfer_time_s <- ctx.transfer_time_s +. t
  | "overhead" -> ctx.overhead_time_s <- ctx.overhead_time_s +. t
  | "fallback" -> ctx.fallback_time_s <- ctx.fallback_time_s +. t
  | _ -> ());
  ev

let block (ctx : context) (ev : Event.t) =
  ctx.cursor_s <- Float.max ctx.cursor_s ev.Event.ev_finish_s

(* A blocking charge: the host does not proceed until it retires. *)
let charge_sync (ctx : context) ~lane ~track ~name ?attrs ?deps t =
  block ctx (charge ctx ~lane ~track ~name ?attrs ?deps t)

let charge_overhead (ctx : context) ~name ?attrs t =
  charge_sync ctx ~lane:Event.Ctrl ~track:"overhead" ~name ?attrs t

(* Flight-recorder entry stamped with the device-timeline position, the
   owning device and the source location of the op currently executing. *)
let flight (ctx : context) ~cat fmt =
  Ftn_obs.Flight.recordf ~time_s:ctx.cursor_s ~loc:ctx.cur_loc_str
    ~device:ctx.device.Scheduler.dev_id ~cat fmt

let set_cur_loc (ctx : context) loc =
  if loc <> ctx.cur_loc then begin
    ctx.cur_loc <- loc;
    ctx.cur_loc_str <-
      (if Ftn_diag.Loc.is_known loc then Ftn_diag.Loc.to_string loc else "")
  end

let sim_spans (ctx : context) =
  List.filter
    (fun (sp : Ftn_obs.Span.span) ->
      sp.Ftn_obs.Span.id >= ctx.obs_base
      && sp.Ftn_obs.Span.clock = Ftn_obs.Span.Sim)
    (Ftn_obs.Span.spans ctx.obs)

(* Span-fold timing, kept as a cross-check for the running totals (the
   tests compare the two). *)
let track_time_from_spans (ctx : context) track =
  List.fold_left
    (fun acc (sp : Ftn_obs.Span.span) ->
      if Ftn_obs.Span.attr sp "track" = Some track then
        acc +. sp.Ftn_obs.Span.dur_s
      else acc)
    0.0 (sim_spans ctx)

let device_time (ctx : context) = ctx.charged_s
let kernel_time (ctx : context) = ctx.kernel_time_s
let transfer_time (ctx : context) = ctx.transfer_time_s
let overhead_time (ctx : context) = ctx.overhead_time_s
let fallback_time (ctx : context) = ctx.fallback_time_s

(* Where the context's work (including unwaited launches) retires. *)
let finish_time (ctx : context) =
  List.fold_left
    (fun acc (ev : Event.t) -> Float.max acc ev.Event.ev_finish_s)
    ctx.cursor_s ctx.pending

(* --- fault injection and retry --- *)

(* Account for one injected fault: metrics, trace, and — for a hung
   kernel — the watchdog timeout the device burns before the failure is
   even observable (charged on the compute engine, where the kernel
   hung). Other fault kinds are detected immediately. *)
let note_fault (ctx : context) ~name (fault : Fault.fault) =
  let code = Fault.kind_code fault.Fault.kind in
  Ftn_obs.Metrics.incr "fault.injected";
  Ftn_obs.Metrics.incr ("fault." ^ code);
  let cost =
    match fault.Fault.kind with
    | Fault.Kernel_timeout -> ctx.retry.Fault.timeout_s
    | Fault.Alloc_failure | Fault.Transfer_error | Fault.Launch_failure -> 0.0
  in
  if cost > 0.0 then
    charge_sync ctx ~lane:Event.Compute ~track:"overhead"
      ~name:("watchdog:" ^ name) ~attrs:[ ("fault", code) ] cost;
  Trace.record ctx.trace
    (Trace.Fault
       { target = name; kind = code; attempt = fault.Fault.attempt;
         time_s = cost });
  flight ctx ~cat:"fault" "%s on %s" (Fault.describe_fault fault) name;
  Ftn_obs.Log.debugf "injected %s on %s" (Fault.describe_fault fault) name

(* Run one device operation under the fault plan: arm the injector once
   for the logical operation (a retry is the same occurrence), then
   attempt it up to the retry budget. The injector is consulted *before*
   [f] runs, so a failed attempt performs no work and charges nothing but
   exponential backoff on the overhead track — the kernel and transfer
   tracks are only ever charged by the attempt that succeeds, which is
   what keeps retry accounting honest. [recover] runs between attempts
   and may cure the token (e.g. eviction after a device OOM, or a queue
   drain to a peer device). *)
let with_faults (ctx : context) ~site ?kernel ~name
    ?(recover = fun _ _ -> ()) f =
  match ctx.injector with
  | None -> Ok (f ())
  | Some inj ->
    let token = Injector.arm inj ~site ?kernel () in
    let max_attempts = max 1 ctx.retry.Fault.max_attempts in
    let rec attempt_loop attempt =
      match Injector.fire token ~attempt with
      | None -> Ok (f ())
      | Some fault ->
        note_fault ctx ~name fault;
        if attempt >= max_attempts then Error fault
        else begin
          charge_overhead ctx ~name:("backoff:" ^ name)
            ~attrs:
              [ ("fault", Fault.kind_code fault.Fault.kind);
                ("attempt", string_of_int attempt) ]
            (Fault.backoff_s ctx.retry ~attempt);
          ctx.retries <- ctx.retries + 1;
          Ftn_obs.Metrics.incr "fault.retries";
          flight ctx ~cat:"retry" "retry %s (attempt %d of %d)" name
            (attempt + 1) max_attempts;
          recover fault token;
          Ftn_diag.Diag_engine.warning ctx.diag ~loc:ctx.cur_loc
            (Fmt.str "retrying %s after %s (attempt %d of %d)" name
               (Fault.describe_fault fault) (attempt + 1) max_attempts);
          attempt_loop (attempt + 1)
        end
    in
    attempt_loop 1

let exhausted (ctx : context) fault =
  Fault.fail
    (Fault.Retries_exhausted
       { fault; attempts = max 1 ctx.retry.Fault.max_attempts })

let name_and_space op =
  match Op.string_attr op "name" with
  | Some name ->
    (name, Option.value ~default:0 (Op.int_attr op "memory_space"))
  | None ->
    Fault.fail
      (Fault.Invalid_host
         { op = Op.name op; reason = "missing a name attribute" })

let resolve_shape ~op_name mi dynamic =
  let wanted =
    List.length
      (List.filter (fun d -> d = Types.Dynamic) mi.Types.shape)
  in
  let supplied = List.length dynamic in
  if supplied <> wanted then
    (* Surplus extents mean the bounds lowering produced sizes the type
       cannot absorb: wrong data if silently dropped, so fail loudly. *)
    Fault.fail
      (Fault.Invalid_host
         {
           op = op_name;
           reason =
             Fmt.str
               "%d dynamic extents supplied for a memref type with %d \
                dynamic dimensions"
               supplied wanted;
         });
  let rec go shape dynamic =
    match (shape, dynamic) with
    | [], _ -> []
    | Types.Static n :: rest, dynamic -> n :: go rest dynamic
    | Types.Dynamic :: rest, d :: dynamic -> d :: go rest dynamic
    | Types.Dynamic :: _, [] ->
      Fault.fail
        (Fault.Invalid_host
           { op = op_name; reason = "missing dynamic size" })
  in
  go mi.Types.shape dynamic

(* Run the kernel's function body in the interpreter with loop statistics
   recording; returns the statistics and the interpreter steps consumed
   (the latter costs the CPU-fallback path). *)
let interpret_kernel state (design : Bitstream.kernel_design) args =
  let stats = Timing.make_stats () in
  let saved = state.Interp.on_loop in
  let before = state.Interp.steps in
  state.Interp.on_loop <-
    Some (fun ~loop_key ~iters -> Timing.record_loop stats ~loop_key ~iters);
  Fun.protect
    ~finally:(fun () -> state.Interp.on_loop <- saved)
    (fun () ->
      ignore (Interp.call_function state design.Bitstream.kd_function args));
  (stats, state.Interp.steps - before)

(* Graceful degradation: a kernel that persistently fails on the device
   (and cannot drain to a peer) runs on the host CPU instead. Results
   stay correct (the same function body runs in the same interpreter);
   the cost lands on the "fallback" track at cpu_step_s per interpreter
   step, and this context — plus the device that failed it, but no
   healthy peer — is flagged degraded. *)
let cpu_fallback (ctx : context) state (design : Bitstream.kernel_design)
    args =
  let name = design.Bitstream.kd_name in
  let _stats, steps = interpret_kernel state design args in
  let t = float_of_int steps *. ctx.retry.Fault.cpu_step_s in
  let ev =
    charge ctx ~lane:Event.Ctrl ~track:"fallback"
      ~name:("cpu_fallback:" ^ name)
      ~attrs:[ ("kernel", name); ("steps", string_of_int steps) ]
      t
  in
  block ctx ev;
  ctx.degraded <- true;
  ctx.device.Scheduler.dev_degraded <- true;
  ctx.cpu_fallbacks <- ctx.cpu_fallbacks + 1;
  Ftn_obs.Metrics.incr "fault.cpu_fallbacks";
  Cu_stats.note_fallback ctx.cus ~kernel:name;
  Cu_stats.note_fallback ctx.device.Scheduler.dev_cus ~kernel:name;
  Trace.record ctx.trace (Trace.Fallback { kernel = name; steps; time_s = t });
  flight ctx ~cat:"fallback" "cpu fallback %s (%d steps)" name steps;
  Ftn_obs.Log.debugf "cpu fallback %s: %d steps, %.3f us" name steps
    (t *. 1e6);
  Ftn_diag.Diag_engine.warning ctx.diag ~loc:ctx.cur_loc
    (Fmt.str
       "kernel %s failed persistently on the device; executed on the host \
        CPU instead (%d steps)%s"
       name steps (Fault.flight_note ()));
  ev

(* Drain recovery for a persistent launch-site fault: when a healthy
   peer device exists, mark the faulted device failed, re-stage the
   kernel's buffers on the peer at honest DMA cost and cure the fault so
   the next attempt launches there. Leaves the token alone (falling
   through to the CPU path) when the context is the only device. *)
let drain_to_peer (ctx : context) ~name args (fault : Fault.fault) token =
  if fault.Fault.persistence = Fault.Persistent && ctx.retry.Fault.drain
  then
    match
      Scheduler.healthy_peer ctx.sched ~except:ctx.device.Scheduler.dev_id
    with
    | None -> ()
    | Some peer ->
      let bad = ctx.device in
      Scheduler.fail_device ctx.sched bad;
      ctx.device <- peer;
      ctx.drained <- true;
      Ftn_obs.Metrics.incr "sched.drains";
      let bytes =
        List.fold_left
          (fun acc a ->
            match a with
            | Rtval.Buf b -> acc + Rtval.byte_size b
            | _ -> acc)
          0 args
      in
      if bytes > 0 then begin
        let t = ctx.model.Device_model.transfer_time_s ~bytes in
        charge_sync ctx ~lane:Event.Copy_in ~track:"transfer"
          ~name:("drain:" ^ name)
          ~attrs:
            [ ("kernel", name); ("bytes", string_of_int bytes);
              ("from", string_of_int bad.Scheduler.dev_id) ]
          t;
        Trace.record ctx.trace
          (Trace.Transfer
             { name = "drain:" ^ name; direction = Trace.Host_to_device;
               bytes; time_s = t })
      end;
      flight ctx ~cat:"drain"
        "device %d failed persistently; drained %s to device %d (%d bytes \
         re-staged)"
        bad.Scheduler.dev_id name peer.Scheduler.dev_id bytes;
      Ftn_diag.Diag_engine.warning ctx.diag ~loc:ctx.cur_loc
        (Fmt.str
           "device %d failed persistently (%s); drained kernel %s to peer \
            device %d"
           bad.Scheduler.dev_id (Fault.describe_fault fault) name
           peer.Scheduler.dev_id);
      Injector.cure token

(* Execute one kernel: run its function body in the interpreter, then
   convert the recorded loop statistics to cycles. Injected launch faults
   fire before the body runs (a failed launch computes nothing); a
   persistently failing kernel drains to a peer device when one exists
   and degrades to host execution otherwise. Returns the completion
   event — the launch is an async enqueue; the caller decides whether to
   block on it. *)
let execute_kernel (ctx : context) state (design : Bitstream.kernel_design)
    args =
  let name = design.Bitstream.kd_name in
  (* Host-timeline position when the launch was requested; everything
     between here and the compute engine picking the kernel up — retry
     backoff, watchdog timeouts, an occupied compute lane — is queue
     wait, measured on the owning device's timeline. *)
  let enqueue_s = ctx.cursor_s in
  let run_on_device () =
    let stats, _steps = interpret_kernel state design args in
    let t = ctx.model.Device_model.kernel_time_s design.Bitstream.kd_schedule stats in
    let overhead = ctx.model.Device_model.launch_overhead_s in
    let kev =
      charge ctx ~lane:Event.Compute ~track:"kernel" ~name
        ~attrs:[ ("kernel", name) ] ~submit_s:enqueue_s t
    in
    let oev =
      charge ctx ~lane:Event.Compute ~track:"overhead"
        ~name:"launch_overhead" ~attrs:[ ("kernel", name) ]
        ~submit_s:enqueue_s ~deps:[ kev ] overhead
    in
    let queue_wait = Event.queue_wait_s kev in
    Ftn_obs.Metrics.incr "device.kernel_launches";
    ctx.device.Scheduler.dev_launches <-
      ctx.device.Scheduler.dev_launches + 1;
    Cu_stats.note_launch ctx.cus ~kernel:name ~busy_s:t;
    Cu_stats.note_launch ctx.device.Scheduler.dev_cus ~kernel:name ~busy_s:t;
    let latency = queue_wait +. overhead in
    Ftn_obs.Metrics.observe "device.launch_latency_s" latency;
    Ftn_obs.Metrics.observe
      ("device.kernel." ^ name ^ ".launch_latency_s")
      latency;
    Ftn_obs.Metrics.observe ("device.kernel." ^ name ^ ".time_s") t;
    Ftn_obs.Metrics.observe "device.queue_wait_s" queue_wait;
    Ftn_obs.Flight.record ~time_s:oev.Event.ev_finish_s ~loc:ctx.cur_loc_str
      ~device:ctx.device.Scheduler.dev_id ~cat:"launch" ("launch " ^ name);
    Ftn_obs.Log.debugf "launch %s: %.3f us kernel + %.3f us overhead" name
      (t *. 1e6) (overhead *. 1e6);
    Trace.record ctx.trace
      (Trace.Launch
         { kernel = name; kernel_time_s = t; overhead_s = overhead;
           queue_wait_s = queue_wait;
           device = ctx.device.Scheduler.dev_id });
    oev
  in
  match
    with_faults ctx ~site:Fault.Launch ~kernel:name ~name
      ~recover:(drain_to_peer ctx ~name args)
      run_on_device
  with
  | Ok ev -> ev
  | Error _fault -> cpu_fallback ctx state design args

(* --- host API: the OpenCL-level operations a (hand-written) host
   program performs against the simulated device. The interpreter handler
   below routes the device dialect through these same functions. --- *)

let api_alloc (ctx : context) ~name ~memory_space ~elt ~shape =
  let do_alloc () =
    let buffer, fresh =
      Data_env.alloc ctx.data ~name ~memory_space ~elt ~shape
    in
    if fresh then begin
      charge_overhead ctx ~name:("alloc:" ^ name)
        ~attrs:[ ("buffer", name);
                 ("bytes", string_of_int (Rtval.byte_size buffer)) ]
        ctx.model.Device_model.alloc_overhead_s;
      Ftn_obs.Metrics.incr "device.allocs";
      Ftn_obs.Metrics.incr ~by:(Rtval.byte_size buffer) "device.bytes_allocated";
      Ftn_obs.Flight.record ~time_s:ctx.cursor_s ~loc:ctx.cur_loc_str
        ~device:ctx.device.Scheduler.dev_id ~cat:"alloc"
        ("alloc " ^ name ^ " (" ^ string_of_int (Rtval.byte_size buffer)
        ^ " bytes)");
      Trace.record ctx.trace
        (Trace.Alloc
           {
             name;
             bytes = Rtval.byte_size buffer;
             time_s = ctx.model.Device_model.alloc_overhead_s;
           })
    end;
    buffer
  in
  (* A persistent allocation failure models device OOM: evict unpinned
     buffers and cure the fault when anything was actually freed. A
     transient fault must not evict — its recovery is a plain retry, so
     the data environment stays identical to a fault-free run. *)
  let recover (fault : Fault.fault) token =
    if fault.Fault.persistence = Fault.Persistent then begin
      let evicted =
        Data_env.evict_unreferenced ~except:(name, memory_space) ctx.data
      in
      if evicted > 0 then begin
        Ftn_obs.Metrics.incr ~by:evicted "fault.evictions";
        Ftn_diag.Diag_engine.warning ctx.diag ~loc:ctx.cur_loc
          (Fmt.str
             "evicted %d unreferenced device buffer%s to satisfy allocation \
              of %S"
             evicted
             (if evicted = 1 then "" else "s")
             name);
        Injector.cure token
      end
    end
  in
  match
    with_faults ctx ~site:Fault.Alloc ~name:("alloc:" ^ name) ~recover
      do_alloc
  with
  | Ok buffer -> buffer
  | Error fault -> exhausted ctx fault

let api_transfer (ctx : context) ~src ~dst =
  (* Endpoint validation: transfers between buffers that disagree on
     element type or byte size corrupt data silently on real hardware, so
     they fail here with a structured shape-mismatch error. *)
  if
    (not (Types.equal src.Rtval.elt dst.Rtval.elt))
    || Rtval.byte_size src <> Rtval.byte_size dst
  then
    Fault.fail
      (Fault.Transfer_mismatch
         {
           src_elt = Types.to_string src.Rtval.elt;
           dst_elt = Types.to_string dst.Rtval.elt;
           src_bytes = Rtval.byte_size src;
           dst_bytes = Rtval.byte_size dst;
         });
  if src.Rtval.memory_space <> dst.Rtval.memory_space then begin
    let bytes = Rtval.byte_size src in
    let t = ctx.model.Device_model.transfer_time_s ~bytes in
    let direction =
      if dst.Rtval.memory_space > 0 then Trace.Host_to_device
      else Trace.Device_to_host
    in
    (* Identify the moved array by the device-side buffer's label (named
       by the data environment), falling back to the host side's. *)
    let device_side, host_side =
      if dst.Rtval.memory_space > 0 then (dst, src) else (src, dst)
    in
    let name =
      if device_side.Rtval.label <> "" then device_side.Rtval.label
      else host_side.Rtval.label
    in
    let dir_str =
      match direction with Trace.Host_to_device -> "h2d" | _ -> "d2h"
    in
    let lane =
      match direction with
      | Trace.Host_to_device -> Event.Copy_in
      | Trace.Device_to_host -> Event.Copy_out
    in
    let do_transfer () =
      (* DMA engines are duplex, so the copy runs on its own lane and
         overlaps compute — but it must not start before any in-flight
         kernel of this context retires (the kernel produces or consumes
         the buffers being moved). *)
      charge_sync ctx ~lane ~track:"transfer"
        ~name:(dir_str ^ ":" ^ name)
        ~attrs:
          [ ("buffer", name); ("direction", dir_str);
            ("bytes", string_of_int bytes) ]
        ~deps:ctx.pending t;
      Ftn_obs.Metrics.incr ~by:bytes
        (match direction with
        | Trace.Host_to_device -> "device.bytes_h2d"
        | Trace.Device_to_host -> "device.bytes_d2h");
      Trace.record ctx.trace
        (Trace.Transfer { name; direction; bytes; time_s = t });
      (* hot path: plain concatenation, the entry's [time_s] already
         positions it on the device timeline *)
      Ftn_obs.Flight.record ~time_s:ctx.cursor_s ~loc:ctx.cur_loc_str
        ~device:ctx.device.Scheduler.dev_id ~cat:"transfer"
        (dir_str ^ " " ^ name ^ " (" ^ string_of_int bytes ^ " bytes)");
      Rtval.copy_into ~src ~dst
    in
    match
      with_faults ctx ~site:Fault.Transfer
        ~name:(dir_str ^ ":" ^ name)
        do_transfer
    with
    | Ok () -> ()
    | Error fault -> exhausted ctx fault
  end
  else Rtval.copy_into ~src ~dst

let kernel_interp_state (ctx : context) =
  match ctx.kernel_state with
  | Some s -> s
  | None ->
    let device_module =
      Op.module_op
        (List.map
           (fun k -> k.Bitstream.kd_function)
           ctx.bitstream.Bitstream.kernels)
    in
    let s =
      Interp.make
        ~handlers:
          [ Intrinsics.print_handler ctx.sink;
            Intrinsics.runtime_library_handler ]
        ~engine:ctx.engine [ device_module ]
    in
    ctx.kernel_state <- Some s;
    s

let find_design (ctx : context) kernel =
  match Bitstream.find_kernel ctx.bitstream kernel with
  | Some design -> design
  | None ->
    Fault.fail
      (Fault.Missing_kernel
         { kernel; xclbin = ctx.bitstream.Bitstream.xclbin_name })

(* Async enqueue: returns the completion event without advancing the
   host cursor, so a subsequent operation from another context (or an
   unordered one from this context) can overlap it. *)
let api_launch_async (ctx : context) ~kernel args =
  let ev =
    execute_kernel ctx (kernel_interp_state ctx) (find_design ctx kernel) args
  in
  ctx.pending <- ev :: ctx.pending;
  ev

let wait_event (ctx : context) (ev : Event.t) =
  block ctx ev;
  ctx.pending <-
    List.filter
      (fun (p : Event.t) -> p.Event.ev_id <> ev.Event.ev_id)
      ctx.pending

(* The blocking launch the hand-written baselines use: enqueue and
   immediately wait, exactly an OpenCL enqueue + clFinish pair. *)
let api_launch (ctx : context) ~kernel args =
  wait_event ctx (api_launch_async ctx ~kernel args)

let summary (ctx : context) =
  (device_time ctx, kernel_time ctx, transfer_time ctx, overhead_time ctx)

let device_domain =
  Interp.Names
    [
      "device.alloc"; "device.lookup"; "device.data_check_exists";
      "device.data_acquire"; "device.data_release"; "device.counter_get";
      "device.kernel_create"; "device.kernel_launch"; "device.kernel_wait";
      "memref.dma_start";
    ]

(* The interpreter handler implementing device.* ops and intercepting DMA
   transfers that touch device memory. *)
let device_handler (ctx : context) : Interp.handler =
  Interp.handler ~domain:device_domain @@ fun state _frame op operands ->
  set_cur_loc ctx (Op.loc op);
  Ftn_obs.Flight.record ~time_s:ctx.cursor_s ~loc:ctx.cur_loc_str
    ~device:ctx.device.Scheduler.dev_id ~cat:"op" (Op.name op);
  match Op.name op with
  | "device.alloc" ->
    let name, memory_space = name_and_space op in
    (match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let shape =
        resolve_shape ~op_name:(Op.name op) mi (List.map Rtval.as_int operands)
      in
      let buffer =
        api_alloc ctx ~name ~memory_space ~elt:mi.Types.elt ~shape
      in
      Some [ Rtval.Buf buffer ]
    | _ ->
      Fault.fail
        (Fault.Invalid_host
           { op = "device.alloc"; reason = "must produce a memref result" }))
  | "device.lookup" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Buf (Data_env.lookup_exn ctx.data ~name ~memory_space) ]
  | "device.data_check_exists" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Bool (Data_env.exists ctx.data ~name ~memory_space) ]
  | "device.data_acquire" ->
    let name, memory_space = name_and_space op in
    Data_env.acquire ctx.data ~name ~memory_space;
    (* The acquire is a zero-cost control-plane event: it participates
       in the event graph (so ordering is inspectable) without charging
       simulated time or recording a span. *)
    ignore
      (Scheduler.submit ctx.sched ~device:ctx.device ~lane:Event.Ctrl
         ~track:"ctrl" ~label:("acquire:" ^ name) ~submit_s:ctx.cursor_s
         ~dur_s:0.0 ());
    Some []
  | "device.data_release" ->
    let name, memory_space = name_and_space op in
    Data_env.release ctx.data ~name ~memory_space;
    Some []
  | "device.counter_get" -> (
    (* With a "counter" attribute the op reads a device-level telemetry
       counter; without one it keeps its original meaning, the refcount
       of a named data-environment entry. *)
    match Op.string_attr op "counter" with
    | Some counter ->
      let v =
        match counter with
        | "kernel_launches" -> Trace.count_launches ctx.trace
        | "bytes_transferred" -> Trace.bytes_transferred ctx.trace
        | "retries" -> ctx.retries
        | "cpu_fallbacks" -> ctx.cpu_fallbacks
        | "faults_injected" -> (
          match ctx.injector with Some i -> Injector.injected i | None -> 0)
        | other ->
          Fault.fail
            (Fault.Invalid_host
               {
                 op = "device.counter_get";
                 reason = Fmt.str "unknown device counter %S" other;
               })
      in
      Some [ Rtval.Int v ]
    | None ->
      let name, memory_space = name_and_space op in
      Some [ Rtval.Int (Data_env.refcount ctx.data ~name ~memory_space) ])
  | "device.kernel_create" -> (
    match Op.symbol_attr op "device_function" with
    | Some fname -> (
      match Bitstream.find_kernel ctx.bitstream fname with
      | Some design ->
        let h = !handle_counter in
        incr handle_counter;
        Hashtbl.replace ctx.handles h { kh_design = design; kh_args = operands };
        Some [ Rtval.Handle h ]
      | None ->
        Fault.fail
          (Fault.Missing_kernel
             { kernel = fname; xclbin = ctx.bitstream.Bitstream.xclbin_name }))
    | None ->
      Fault.fail
        (Fault.Invalid_host
           {
             op = "device.kernel_create";
             reason = "missing a device_function attribute";
           }))
  | "device.kernel_launch" -> (
    match operands with
    | [ Rtval.Handle h ] ->
      (match Hashtbl.find_opt ctx.handles h with
      | Some kh ->
        (* True async enqueue: the completion event is parked on the
           handle for device.kernel_wait; the host cursor stays put. *)
        let ev = execute_kernel ctx state kh.kh_design kh.kh_args in
        Hashtbl.replace ctx.launched h ev;
        ctx.pending <- ev :: ctx.pending
      | None ->
        Fault.fail
          (Fault.Invalid_host
             { op = "device.kernel_launch"; reason = "unknown kernel handle" }));
      Some []
    | _ ->
      Fault.fail
        (Fault.Invalid_host
           { op = "device.kernel_launch"; reason = "expects a handle operand" }))
  | "device.kernel_wait" -> (
    (* A real blocking wait. Waiting on a handle this context never
       created (foreign or stale), never launched, or on a non-handle
       operand is a structured host error — the silent-success no-op
       this op used to be hid all three bugs. *)
    match operands with
    | [ Rtval.Handle h ] -> (
      match Hashtbl.find_opt ctx.launched h with
      | Some ev ->
        wait_event ctx ev;
        Some []
      | None ->
        if Hashtbl.mem ctx.handles h then
          Fault.fail
            (Fault.Invalid_host
               {
                 op = "device.kernel_wait";
                 reason =
                   Fmt.str "kernel handle %d was never launched" h;
               })
        else
          Fault.fail
            (Fault.Invalid_host
               {
                 op = "device.kernel_wait";
                 reason =
                   Fmt.str
                     "unknown kernel handle %d (stale or from another \
                      context)"
                     h;
               }))
    | _ ->
      Fault.fail
        (Fault.Invalid_host
           { op = "device.kernel_wait"; reason = "expects a handle operand" }))
  | "memref.dma_start" -> (
    match operands with
    | [ src; dst ] ->
      api_transfer ctx ~src:(Rtval.as_buffer src) ~dst:(Rtval.as_buffer dst);
      Some []
    | _ -> None)
  | _ -> None

(* End-of-run leak report: any entry still holding references at teardown
   means the lowered data-environment sequence lost a device.data_release
   on some path. Surfaced as a metric plus a diagnostic warning. *)
let report_leaks (ctx : context) =
  match Data_env.leaks ctx.data with
  | [] -> ()
  | leaks ->
    Ftn_obs.Metrics.incr ~by:(List.length leaks) "data_env.leaked";
    List.iter
      (fun (key, rc) ->
        Ftn_diag.Diag_engine.warning ctx.diag
          (Fmt.str
             "device data %s still holds %d reference%s at teardown \
              (missing device.data_release?)"
             key rc
             (if rc = 1 then "" else "s")))
      leaks

(* Build a result record from an API-driven context (hand-written host). *)
let result_of_context (ctx : context) =
  report_leaks ctx;
  {
    output = Intrinsics.contents ctx.sink;
    device_time_s = device_time ctx;
    kernel_time_s = kernel_time ctx;
    transfer_time_s = transfer_time ctx;
    overhead_time_s = overhead_time ctx;
    fallback_time_s = fallback_time ctx;
    kernel_launches = Trace.count_launches ctx.trace;
    bytes_transferred = Trace.bytes_transferred ctx.trace;
    degraded = ctx.degraded;
    drained = ctx.drained;
    retries = ctx.retries;
    cpu_fallbacks = ctx.cpu_fallbacks;
    faults_injected =
      (match ctx.injector with Some i -> Injector.injected i | None -> 0);
    device = ctx.device.Scheduler.dev_id;
    finish_s = finish_time ctx;
    trace = ctx.trace;
    data = ctx.data;
    cus = Cu_stats.snapshot ctx.cus ~window_s:ctx.charged_s;
  }

(* Run the host module's main (or a named entry) against a bitstream. *)
let run ?(echo = false) ?entry ?(args = []) ?engine ?diag ?faults
    ?retry ?sched ?device ?start_s ~host ~bitstream () =
  let ctx =
    create_context ~echo ?engine ?diag ?faults ?retry ?sched ?device
      ?start_s bitstream
  in
  let handlers =
    [
      device_handler ctx;
      Intrinsics.print_handler ctx.sink;
      Intrinsics.runtime_library_handler;
    ]
  in
  let state = Interp.make ~handlers ~engine:ctx.engine [ host ] in
  (try
     match entry with
     | Some entry -> ignore (Interp.run state ~entry ~args)
     | None -> (
       match Interp.main_function host with
       | Some fn -> ignore (Interp.call_function state fn args)
       | None ->
         Fault.fail
           (Fault.Invalid_host
              { op = "module"; reason = "host module has no main program" }))
   with Fault.Error (e, loc) as exn ->
     (* Record the structured runtime error in the context's diagnostics
        stream before propagating, so drivers that accumulate diagnostics
        see it alongside compile-time errors, with the launching op's
        source location. *)
     Ftn_diag.Diag_engine.error ctx.diag ~loc
       (Fault.message e ^ Fault.flight_note ());
     raise exn);
  Ftn_obs.Metrics.incr ~by:state.Interp.steps "interp.steps";
  result_of_context ctx

(* CPU reference: run the core-level module with sequential OpenMP
   semantics (no device). *)
let run_cpu ?(echo = false) ?entry ?(args = []) ?engine core_module =
  let sink = Intrinsics.make_sink ~echo () in
  let handlers =
    [ Intrinsics.print_handler sink; Intrinsics.runtime_library_handler ]
  in
  let state = Interp.make ~handlers ?engine [ core_module ] in
  (match entry with
  | Some entry -> ignore (Interp.run state ~entry ~args)
  | None -> (
    match Interp.main_function core_module with
    | Some fn -> ignore (Interp.call_function state fn args)
    | None ->
      Fault.fail
        (Fault.Invalid_host
           { op = "module"; reason = "module has no main program" })));
  Ftn_obs.Metrics.incr ~by:state.Interp.steps "interp.steps";
  (Intrinsics.contents sink, state.Interp.steps)
