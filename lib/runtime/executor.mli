(** Host-module executor: gives the device dialect its runtime semantics
    against the simulated FPGA. Kernels named by device.kernel_create are
    executed functionally through the interpreter (results are real
    numbers) while the timing model charges the simulated timeline for
    transfers, launches, allocations and kernel cycles.

    Timing is event-based and asynchronous (see {!Event} and
    {!Scheduler}): every charge is scheduled on one engine lane of the
    context's simulated device, several contexts can share a scheduler
    and queue against each other, transfers overlap compute on duplex
    DMA lanes, and [device.kernel_launch] / [device.kernel_wait] are a
    true async enqueue + blocking wait pair. A single chained program on
    a fresh scheduler sees timings identical to the old synchronous
    model.

    The host API functions ([api_*]) expose the same OpenCL-level
    operations to hand-written OCaml host drivers (used by the hand-written
    HLS baselines), so both paths share one cost model.

    The executor is fault-tolerant: pass a {!Ftn_fault.Fault.plan} to
    inject deterministic alloc/transfer/launch failures, absorbed by the
    retry machinery (exponential backoff charged to the simulated overhead
    track, eviction after device OOM, drain to a healthy peer device for
    persistent kernel faults when one exists, host-CPU fallback
    otherwise). All runtime errors raise the structured
    {!Ftn_fault.Fault.Error}. *)

type context

type result = {
  output : string;  (** Captured [print *] output. *)
  device_time_s : float;
      (** kernel + transfers + overheads + CPU fallback — busy time (the
          sum of charges), not the makespan; see [finish_s]. *)
  kernel_time_s : float;
  transfer_time_s : float;
  overhead_time_s : float;
  fallback_time_s : float;
      (** Simulated host time spent executing kernels that degraded to
          the CPU. *)
  kernel_launches : int;
  bytes_transferred : int;
  degraded : bool;
      (** At least one kernel of {e this context} fell back to host
          execution. Per-job: a peer context's fallback on a shared
          scheduler never sets it. *)
  drained : bool;
      (** This context migrated to a peer device after its original
          device failed persistently. *)
  retries : int;  (** Operation attempts repeated after an injected fault. *)
  cpu_fallbacks : int;
  faults_injected : int;
  device : int;
      (** Simulated device the context finished on (0-based). *)
  finish_s : float;
      (** Scheduler-timeline instant the context's last operation
          (including unwaited launches) retires. *)
  trace : Trace.t;
  data : Data_env.t;
  cus : Ftn_hlsim.Cu_stats.snapshot list;
      (** Per-compute-unit launch/busy/occupancy snapshots, in
          first-launch order (occupancy over the device-active window). *)
}

val create_context :
  ?echo:bool ->
  ?engine:Ftn_interp.Interp.engine ->
  ?diag:Ftn_diag.Diag_engine.t ->
  ?faults:Ftn_fault.Fault.plan ->
  ?retry:Ftn_fault.Fault.retry_policy ->
  ?sched:Scheduler.t ->
  ?device:Scheduler.device ->
  ?start_s:float ->
  Ftn_hlsim.Bitstream.t ->
  context
(** The timing model is read from the bitstream's [model] field — there
    is no device parameter and no U280 fallback. [engine] selects the
    interpreter engine for kernels and host modules
    run against this context; defaults to
    [Ftn_interp.Interp.default_engine ()]. [diag] receives recovery
    warnings and runtime errors (defaults to the shared engine); [faults]
    enables deterministic fault injection; [retry] tunes the recovery
    policy (defaults to {!Ftn_fault.Fault.default_retry}).

    [sched] places the context on a shared multi-device scheduler
    (defaults to a fresh single-device one — the synchronous legacy
    behaviour); [device] pins it to a specific device (defaults to
    {!Scheduler.pick_device}); [start_s] is the scheduler-timeline
    instant the context's program begins (its admission time — defaults
    to 0). *)

val context_device : context -> Scheduler.device
(** Current placement (a drain moves it). *)

val context_scheduler : context -> Scheduler.t

(** {2 Host API} *)

val api_alloc :
  context ->
  name:string ->
  memory_space:int ->
  elt:Ftn_ir.Types.t ->
  shape:int list ->
  Ftn_interp.Rtval.buffer
(** Allocate (or reuse) a named device buffer, charging the first-touch
    overhead. A persistent injected allocation failure is recovered by
    evicting unreferenced buffers; if nothing can be evicted the call
    raises [Retries_exhausted]. *)

val api_transfer :
  context -> src:Ftn_interp.Rtval.buffer -> dst:Ftn_interp.Rtval.buffer -> unit
(** Copy between buffers; crossing memory spaces charges DMA time on the
    direction's DMA lane ([Copy_in] for h2d, [Copy_out] for d2h) and
    records a trace event. The transfer waits for this context's
    in-flight kernels but otherwise overlaps peer contexts' compute.
    Endpoints must agree on element type and byte size or the call
    raises a structured [Transfer_mismatch]. *)

val api_launch : context -> kernel:string -> Ftn_interp.Rtval.t list -> unit
(** Blocking launch (enqueue + wait, an OpenCL enqueue/clFinish pair):
    execute a bitstream kernel functionally and charge its modelled
    cycles plus launch overhead. A persistently failing kernel drains to
    a healthy peer device when one exists and degrades to host-CPU
    execution otherwise. *)

val api_launch_async :
  context -> kernel:string -> Ftn_interp.Rtval.t list -> Event.t
(** Async enqueue: charges the kernel on the device's compute lane and
    returns its completion event without advancing the host's timeline
    cursor. Pass the event to {!wait_event} to block on it. *)

val wait_event : context -> Event.t -> unit
(** Advance the context's timeline cursor to the event's finish. *)

val result_of_context : context -> result
(** Also emits the end-of-run leak report: entries still holding
    references at teardown bump the [data_env.leaked] metric and warn
    through the context's diagnostic engine. *)

val summary : context -> float * float * float * float
(** (device, kernel, transfer, overhead) seconds so far — O(1), read from
    running totals maintained by the charging functions. *)

val fallback_time : context -> float
(** Simulated seconds charged to the CPU-fallback track so far. *)

val finish_time : context -> float
(** Scheduler-timeline instant the context's work so far (including
    unwaited launches) retires. *)

val track_time_from_spans : context -> string -> float
(** Recompute one track's total ("kernel", "transfer", "overhead" or
    "fallback") by folding the context's sim-clock spans — the totals'
    cross-check, exposed for tests. *)

(** {2 Interpreted host modules} *)

val device_handler : context -> Ftn_interp.Interp.handler
(** The interpreter handler implementing device.* ops and intercepting
    cross-space memref.dma_start. [device.kernel_launch] is an async
    enqueue; [device.kernel_wait] genuinely blocks, and waiting on an
    unknown, foreign or never-launched handle (or a non-handle operand)
    raises a structured [Invalid_host] error. *)

val run :
  ?echo:bool ->
  ?entry:string ->
  ?args:Ftn_interp.Rtval.t list ->
  ?engine:Ftn_interp.Interp.engine ->
  ?diag:Ftn_diag.Diag_engine.t ->
  ?faults:Ftn_fault.Fault.plan ->
  ?retry:Ftn_fault.Fault.retry_policy ->
  ?sched:Scheduler.t ->
  ?device:Scheduler.device ->
  ?start_s:float ->
  host:Ftn_ir.Op.t ->
  bitstream:Ftn_hlsim.Bitstream.t ->
  unit ->
  result
(** Interpret the host module (its [ftn.main] program unless [entry] is
    given) against a bitstream. An escaping {!Ftn_fault.Fault.Error} is
    recorded in [diag] (with the launching op's source location) before
    it propagates. [sched]/[device]/[start_s] place the run on a shared
    multi-device scheduler, as in {!create_context}. *)

val run_cpu :
  ?echo:bool ->
  ?entry:string ->
  ?args:Ftn_interp.Rtval.t list ->
  ?engine:Ftn_interp.Interp.engine ->
  Ftn_ir.Op.t ->
  string * int
(** CPU reference: run a core-level module with sequential OpenMP
    semantics; returns (captured output, interpreter steps). *)
