(** Host-module executor: gives the device dialect its runtime semantics
    against the simulated FPGA. Kernels named by device.kernel_create are
    executed functionally through the interpreter (results are real
    numbers) while the timing model charges the simulated timeline for
    transfers, launches, allocations and kernel cycles.

    The host API functions ([api_*]) expose the same OpenCL-level
    operations to hand-written OCaml host drivers (used by the hand-written
    HLS baselines), so both paths share one cost model. *)

exception Runtime_error of string

type context

type result = {
  output : string;  (** Captured [print *] output. *)
  device_time_s : float;  (** kernel + transfers + overheads. *)
  kernel_time_s : float;
  transfer_time_s : float;
  overhead_time_s : float;
  kernel_launches : int;
  bytes_transferred : int;
  trace : Trace.t;
  data : Data_env.t;
}

val create_context :
  ?spec:Ftn_hlsim.Fpga_spec.t ->
  ?echo:bool ->
  ?engine:Ftn_interp.Interp.engine ->
  Ftn_hlsim.Bitstream.t ->
  context
(** [engine] selects the interpreter engine for kernels and host modules
    run against this context; defaults to
    [Ftn_interp.Interp.default_engine ()]. *)

(** {2 Host API} *)

val api_alloc :
  context ->
  name:string ->
  memory_space:int ->
  elt:Ftn_ir.Types.t ->
  shape:int list ->
  Ftn_interp.Rtval.buffer
(** Allocate (or reuse) a named device buffer, charging the first-touch
    overhead. *)

val api_transfer :
  context -> src:Ftn_interp.Rtval.buffer -> dst:Ftn_interp.Rtval.buffer -> unit
(** Copy between buffers; crossing memory spaces charges DMA time and
    records a trace event. *)

val api_launch : context -> kernel:string -> Ftn_interp.Rtval.t list -> unit
(** Execute a bitstream kernel functionally and charge its modelled
    cycles plus launch overhead. *)

val result_of_context : context -> result
val summary : context -> float * float * float * float
(** (device, kernel, transfer, overhead) seconds so far — O(1), read from
    running totals maintained by the charging functions. *)

val track_time_from_spans : context -> string -> float
(** Recompute one track's total ("kernel", "transfer" or "overhead") by
    folding the context's sim-clock spans — the totals' cross-check,
    exposed for tests. *)

(** {2 Interpreted host modules} *)

val device_handler : context -> Ftn_interp.Interp.handler
(** The interpreter handler implementing device.* ops and intercepting
    cross-space memref.dma_start. *)

val run :
  ?spec:Ftn_hlsim.Fpga_spec.t ->
  ?echo:bool ->
  ?entry:string ->
  ?args:Ftn_interp.Rtval.t list ->
  ?engine:Ftn_interp.Interp.engine ->
  host:Ftn_ir.Op.t ->
  bitstream:Ftn_hlsim.Bitstream.t ->
  unit ->
  result
(** Interpret the host module (its [ftn.main] program unless [entry] is
    given) against a bitstream. *)

val run_cpu :
  ?echo:bool ->
  ?entry:string ->
  ?args:Ftn_interp.Rtval.t list ->
  ?engine:Ftn_interp.Interp.engine ->
  Ftn_ir.Op.t ->
  string * int
(** CPU reference: run a core-level module with sequential OpenMP
    semantics; returns (captured output, interpreter steps). *)
