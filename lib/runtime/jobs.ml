(* Job queue for the multi-device runtime: admission control, per-tenant
   round-robin dispatch and latency accounting over a shared
   {!Scheduler}.

   A job is a named closure running one host program (usually
   Executor.run on a compiled module) against the shared scheduler; the
   queue decides *where* (least-loaded healthy device) and *when* (after
   its dependencies finish and a slot in the device's bounded admission
   queue frees up) each job starts on the simulated timeline. Jobs are
   dispatched round-robin across tenants so one tenant's burst cannot
   starve another's queue, and every completion is observed into a
   private metrics registry so p50/p99 tail latency comes out of the
   same histogram machinery the profiler uses.

   Determinism: dispatch order depends only on the submission list
   (tenant cycle over FIFO queues), device choice only on simulated lane
   availability with lowest-id tie-break, and job outputs are
   concatenated in submission order — so the same job list produces
   byte-identical output whatever the device count. *)

module Fault = Ftn_fault.Fault

type spec = {
  js_name : string;
  js_tenant : string;
  js_deps : string list;
  js_run :
    ?faults:Fault.plan ->
    sched:Scheduler.t ->
    device:Scheduler.device ->
    start_s:float ->
    unit ->
    Executor.result;
}

let job ?(tenant = "default") ?(deps = []) ~name run =
  { js_name = name; js_tenant = tenant; js_deps = deps; js_run = run }

type config = {
  devices : int;
  queue_depth : int;
      (* in-flight jobs a device accepts before admission blocks *)
  fault_device : (int * Fault.plan) option;
}

let default_config = { devices = 1; queue_depth = 8; fault_device = None }

type stats = {
  jobs_run : int;
  jobs_dropped : int;
  elapsed_s : float;
  throughput_jps : float;
  p50_latency_s : float;
  p99_latency_s : float;
  total_kernel_s : float;
  total_transfer_s : float;
  degraded_jobs : int;
  drained_jobs : int;
  output : string;
  results : (string * Executor.result) list;
  scheduler : Scheduler.t;
}

let run ?(config = default_config) specs =
  if config.queue_depth < 1 then invalid_arg "Jobs.run: queue_depth < 1";
  let sched = Scheduler.create ~devices:config.devices () in
  let registry = Ftn_obs.Metrics.create () in
  let n = List.length specs in
  let results : Executor.result option array = Array.make n None in
  let specs_arr = Array.of_list specs in
  (* Tenant queues in first-appearance order; each holds submission
     indices in submission order. *)
  let tenants = ref [] in
  let queues : (string, int Queue.t) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i s ->
      let q =
        match Hashtbl.find_opt queues s.js_tenant with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add queues s.js_tenant q;
          tenants := s.js_tenant :: !tenants;
          q
      in
      Queue.push i q)
    specs;
  let tenants = List.rev !tenants in
  (* Finish time of each completed job, keyed by name — dependency
     arrivals read it, so a dep list naming an uncompleted job keeps the
     dependent parked in its tenant queue. *)
  let finished : (string, float) Hashtbl.t = Hashtbl.create (max 8 n) in
  (* Per-device admission FIFO: finish times of the jobs admitted to the
     device. Once [queue_depth] are in flight, the next admission gates
     on the oldest completion. *)
  let admission = Array.init config.devices (fun _ -> Queue.create ()) in
  let dropped = ref 0 in
  let run_one idx =
    let spec = specs_arr.(idx) in
    let arrival =
      List.fold_left
        (fun acc d ->
          Float.max acc
            (Option.value ~default:0.0 (Hashtbl.find_opt finished d)))
        0.0 spec.js_deps
    in
    let device = Scheduler.pick_device sched in
    let faults =
      match config.fault_device with
      | Some (fd, plan) when device.Scheduler.dev_id = fd -> Some plan
      | _ -> None
    in
    let fifo = admission.(device.Scheduler.dev_id) in
    let gate =
      if Queue.length fifo >= config.queue_depth then Queue.pop fifo else 0.0
    in
    let start_s = Float.max arrival gate in
    let res = spec.js_run ?faults ~sched ~device ~start_s () in
    (* Admission is charged to the device the job was enqueued on, even
       if a drain later moved it — the slot there was held regardless. *)
    Queue.push res.Executor.finish_s fifo;
    Hashtbl.replace finished spec.js_name res.Executor.finish_s;
    Ftn_obs.Metrics.observe ~registry "sched.job_latency_s"
      (res.Executor.finish_s -. arrival);
    Ftn_obs.Metrics.observe ~registry "sched.admission_wait_s"
      (start_s -. arrival);
    results.(idx) <- Some res
  in
  (* Round-robin dispatch: one ready job per tenant per cycle. A cycle
     with queued jobs but no progress means every head is waiting on a
     dependency that can never finish (cyclic or unknown) — those jobs
     are dropped, and counted, rather than looping forever. *)
  let rec cycle () =
    let progress = ref false in
    List.iter
      (fun tenant ->
        let q = Hashtbl.find queues tenant in
        if not (Queue.is_empty q) then begin
          let idx = Queue.peek q in
          let spec = specs_arr.(idx) in
          if List.for_all (fun d -> Hashtbl.mem finished d) spec.js_deps
          then begin
            ignore (Queue.pop q);
            run_one idx;
            progress := true
          end
        end)
      tenants;
    let remaining =
      List.exists
        (fun t -> not (Queue.is_empty (Hashtbl.find queues t)))
        tenants
    in
    if remaining then
      if !progress then cycle ()
      else
        List.iter
          (fun t ->
            let q = Hashtbl.find queues t in
            dropped := !dropped + Queue.length q;
            Queue.clear q)
          tenants
  in
  cycle ();
  let completed = ref [] in
  let output = Buffer.create 256 in
  let total_kernel = ref 0.0 and total_transfer = ref 0.0 in
  let degraded = ref 0 and drained = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | None -> ()
      | Some (res : Executor.result) ->
        completed := (specs_arr.(i).js_name, res) :: !completed;
        Buffer.add_string output res.Executor.output;
        total_kernel := !total_kernel +. res.Executor.kernel_time_s;
        total_transfer := !total_transfer +. res.Executor.transfer_time_s;
        if res.Executor.degraded then incr degraded;
        if res.Executor.drained then incr drained)
    results;
  let jobs_run = List.length !completed in
  let elapsed = Scheduler.elapsed_s sched in
  let quantile q =
    Option.value ~default:0.0
      (Ftn_obs.Metrics.histogram_quantile ~registry "sched.job_latency_s" q)
  in
  {
    jobs_run;
    jobs_dropped = !dropped;
    elapsed_s = elapsed;
    throughput_jps =
      (if elapsed > 0.0 then float_of_int jobs_run /. elapsed else 0.0);
    p50_latency_s = quantile 0.5;
    p99_latency_s = quantile 0.99;
    total_kernel_s = !total_kernel;
    total_transfer_s = !total_transfer;
    degraded_jobs = !degraded;
    drained_jobs = !drained;
    output = Buffer.contents output;
    results = List.rev !completed;
    scheduler = sched;
  }

let pp_stats fmt (s : stats) =
  Fmt.pf fmt
    "@[<v>jobs        %d run, %d dropped@,\
     elapsed     %.3f us (simulated makespan)@,\
     throughput  %.1f jobs/s (simulated)@,\
     latency     p50 %.3f us, p99 %.3f us@,\
     kernel      %.3f us total@,\
     transfer    %.3f us total@,\
     degraded    %d job%s, %d drained@]"
    s.jobs_run s.jobs_dropped (s.elapsed_s *. 1e6) s.throughput_jps
    (s.p50_latency_s *. 1e6)
    (s.p99_latency_s *. 1e6)
    (s.total_kernel_s *. 1e6)
    (s.total_transfer_s *. 1e6)
    s.degraded_jobs
    (if s.degraded_jobs = 1 then "" else "s")
    s.drained_jobs
