(* Job queue for the multi-device runtime: admission control, per-tenant
   round-robin dispatch, latency accounting and a resilience/QoS layer
   (deadlines, tenant quotas, per-device circuit breakers, overload
   shedding) over a shared {!Scheduler}.

   A job is a named closure running one host program (usually
   Executor.run on a compiled module) against the shared scheduler; the
   queue decides *where* (least-loaded healthy device, gated by that
   device's circuit breaker) and *when* (after its dependencies finish
   and a slot in the device's bounded admission queue frees up) each job
   starts on the simulated timeline. Jobs are dispatched round-robin
   across tenants so one tenant's burst cannot starve another's queue,
   and every completion is observed into a private metrics registry so
   p50/p90/p99 tail latency comes out of the same histogram machinery
   the profiler uses.

   Resilience is policy on top of those mechanisms, and every feature is
   off by default so a default-config run is byte-identical to the
   pre-resilience queue:
   - a job whose admission wait would exceed its deadline is *shed* at
     [arrival + deadline], charged only that queue wait, and never runs;
   - a tenant at its in-flight cap waits for its own oldest completion
     before the next admission, whatever the device backlog;
   - each device's breaker trips open after consecutive bad jobs
     (retries / faults / degradation / drain), re-admits a half-open
     probe after a simulated cooldown, and quarantines the device once
     it has flapped too often;
   - when the aggregate queue depth crosses the shed watermark, the
     lowest-priority, furthest-past-deadline queued work is shed before
     it can grow the tail.

   Determinism: dispatch order depends only on the submission list
   (tenant cycle over FIFO queues), device choice only on simulated lane
   availability and breaker state with lowest-id tie-break, shedding
   only on simulated timestamps — so the same job list, config and fault
   seed produce byte-identical output and stats whatever the device
   count. *)

module Fault = Ftn_fault.Fault

type spec = {
  js_name : string;
  js_tenant : string;
  js_deps : string list;
  js_prio : int;
  js_deadline_s : float option;
  js_run :
    ?faults:Fault.plan ->
    sched:Scheduler.t ->
    device:Scheduler.device ->
    start_s:float ->
    unit ->
    Executor.result;
}

let job ?(tenant = "default") ?(deps = []) ?(prio = 0) ?deadline_s ~name run =
  {
    js_name = name;
    js_tenant = tenant;
    js_deps = deps;
    js_prio = prio;
    js_deadline_s = deadline_s;
    js_run = run;
  }

type config = {
  devices : int;
  queue_depth : int;
      (* in-flight jobs a device accepts before admission blocks *)
  fault_device : (int * Fault.plan) option;
  default_deadline_s : float option;
      (* queue-wide admission deadline for jobs without their own *)
  tenant_quota : int option;  (* max in-flight jobs per tenant *)
  tenant_share : float option;
      (* max fraction of total admission capacity per tenant *)
  slo_s : float option;  (* arrival-to-finish latency objective *)
  breaker : Breaker.config option;
  shed_watermark : int option;
      (* aggregate queued jobs above which overload shedding kicks in *)
}

let default_config =
  {
    devices = 1;
    queue_depth = 8;
    fault_device = None;
    default_deadline_s = None;
    tenant_quota = None;
    tenant_share = None;
    slo_s = None;
    breaker = None;
    shed_watermark = None;
  }

type shed = {
  sh_job : string;
  sh_tenant : string;
  sh_reason : string;
  sh_wait_s : float;
  sh_time_s : float;
}

type tenant_stats = {
  t_name : string;
  t_run : int;
  t_shed : int;
  t_p50_s : float;
  t_p90_s : float;
  t_p99_s : float;
  t_slo_violations : int;
}

type stats = {
  jobs_run : int;
  jobs_dropped : int;
  jobs_shed : int;
  elapsed_s : float;
  throughput_jps : float;
  p50_latency_s : float;
  p90_latency_s : float;
  p99_latency_s : float;
  total_kernel_s : float;
  total_transfer_s : float;
  degraded_jobs : int;
  drained_jobs : int;
  slo_violations : int;
  shed_wait_s : float;
  sheds : shed list;
  tenants : tenant_stats list;
  breakers : Breaker.snapshot list;
  trace : Trace.t;
  output : string;
  results : (string * Executor.result) list;
  scheduler : Scheduler.t;
}

let tenant_key t = "sched.tenant." ^ t ^ ".latency_s"

let run ?(config = default_config) ?(diag = Ftn_diag.Diag_engine.default)
    specs =
  if config.queue_depth < 1 then invalid_arg "Jobs.run: queue_depth < 1";
  (match config.tenant_quota with
  | Some q when q < 1 -> invalid_arg "Jobs.run: tenant_quota < 1"
  | _ -> ());
  (match config.tenant_share with
  | Some s when s <= 0.0 || s > 1.0 ->
    invalid_arg "Jobs.run: tenant_share outside (0, 1]"
  | _ -> ());
  (match config.shed_watermark with
  | Some w when w < 1 -> invalid_arg "Jobs.run: shed_watermark < 1"
  | _ -> ());
  let sched = Scheduler.create ~devices:config.devices () in
  let registry = Ftn_obs.Metrics.create () in
  let trace = Trace.create () in
  let n = List.length specs in
  let results : Executor.result option array = Array.make n None in
  let specs_arr = Array.of_list specs in
  let breakers =
    match config.breaker with
    | None -> None
    | Some bc ->
      Some
        (Array.init config.devices (fun id ->
             Breaker.create ~device:id bc
               ~on_transition:(fun ~device ~time_s ~from_ ~to_ ~trips ->
                 Trace.record trace
                   (Trace.Breaker { device; from_; to_; trips; time_s });
                 Ftn_obs.Flight.recordf ~time_s ~device ~cat:"resilience"
                   "breaker %s -> %s (trip %d)" from_ to_ trips;
                 Ftn_obs.Metrics.incr "resilience.breaker_transitions";
                 if String.equal to_ "open" || String.equal to_ "quarantined"
                 then Ftn_obs.Metrics.incr "resilience.breaker_trips")))
  in
  let tenant_cap =
    let quota = Option.value ~default:max_int config.tenant_quota in
    let share =
      match config.tenant_share with
      | None -> max_int
      | Some s ->
        max 1 (int_of_float (float_of_int (config.devices * config.queue_depth) *. s))
    in
    min quota share
  in
  (* Tenant queues in first-appearance order; each holds submission
     indices in submission order. *)
  let tenants = ref [] in
  let queues : (string, int Queue.t) Hashtbl.t = Hashtbl.create 8 in
  (* Finish times of each tenant's admitted jobs — the quota gate pops
     the tenant's own oldest completion when the cap is reached. *)
  let tenant_inflight : (string, float Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let submitted : (string, unit) Hashtbl.t = Hashtbl.create (max 8 n) in
  List.iteri
    (fun i s ->
      Hashtbl.replace submitted s.js_name ();
      let q =
        match Hashtbl.find_opt queues s.js_tenant with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add queues s.js_tenant q;
          Hashtbl.add tenant_inflight s.js_tenant (Queue.create ());
          tenants := s.js_tenant :: !tenants;
          q
      in
      Queue.push i q)
    specs;
  let tenants = List.rev !tenants in
  (* Finish time of each completed job, keyed by name — dependency
     arrivals read it, so a dep list naming an uncompleted job keeps the
     dependent parked in its tenant queue. *)
  let finished : (string, float) Hashtbl.t = Hashtbl.create (max 8 n) in
  (* Per-device admission FIFO: finish times of the jobs admitted to the
     device. Once [queue_depth] are in flight, the next admission gates
     on the oldest completion. *)
  let admission = Array.init config.devices (fun _ -> Queue.create ()) in
  let dropped = ref 0 in
  let shed_mark = Array.make n false in
  let sheds = ref [] in
  let shed_count = ref 0 in
  let shed_wait = ref 0.0 in
  let shed_by_name : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let slo_violations = ref 0 in
  let tenant_slo : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let arrival_of spec =
    List.fold_left
      (fun acc d ->
        Float.max acc
          (Option.value ~default:0.0 (Hashtbl.find_opt finished d)))
      0.0 spec.js_deps
  in
  let effective_deadline spec =
    match spec.js_deadline_s with
    | Some _ as d -> d
    | None -> config.default_deadline_s
  in
  let shed_job idx ~reason ~time_s ~wait_s =
    let spec = specs_arr.(idx) in
    shed_mark.(idx) <- true;
    Hashtbl.replace shed_by_name spec.js_name ();
    incr shed_count;
    shed_wait := !shed_wait +. wait_s;
    sheds :=
      {
        sh_job = spec.js_name;
        sh_tenant = spec.js_tenant;
        sh_reason = reason;
        sh_wait_s = wait_s;
        sh_time_s = time_s;
      }
      :: !sheds;
    Trace.record trace
      (Trace.Shed
         {
           job = spec.js_name;
           tenant = spec.js_tenant;
           reason;
           wait_s;
           time_s;
         });
    Ftn_obs.Flight.recordf ~time_s ~cat:"resilience" "shed %s (%s, tenant %s)"
      spec.js_name reason spec.js_tenant;
    Ftn_obs.Metrics.incr "resilience.sheds";
    Ftn_obs.Metrics.observe ~registry "resilience.shed_wait_s" wait_s
  in
  (* Breaker-aware placement: the non-failed, non-quarantined device
     whose compute lane (or breaker cooldown, whichever is later) frees
     first, ties to the lowest id. Without breakers this defers to
     {!Scheduler.pick_device} so the clean path is untouched, including
     its Invalid_host on a fully failed fleet. *)
  let pick_device_resilient () =
    match breakers with
    | None -> Some (Scheduler.pick_device sched)
    | Some bks ->
      let best = ref None in
      List.iter
        (fun (dev : Scheduler.device) ->
          if not dev.Scheduler.dev_failed then
            match Breaker.admit_time_s bks.(dev.Scheduler.dev_id) with
            | None -> ()
            | Some at ->
              let eff = Float.max dev.Scheduler.compute_avail_s at in
              (match !best with
              | Some (beff, _) when beff <= eff -> ()
              | _ -> best := Some (eff, dev)))
        (Scheduler.devices sched);
      Option.map snd !best
  in
  let run_one idx =
    let spec = specs_arr.(idx) in
    let arrival = arrival_of spec in
    match pick_device_resilient () with
    | None ->
      (* Every device is failed or quarantined: nothing can take the
         job, shed it rather than hang. *)
      shed_job idx ~reason:"no_device" ~time_s:arrival ~wait_s:0.0
    | Some device -> (
      let dev_id = device.Scheduler.dev_id in
      let faults =
        match config.fault_device with
        | Some (fd, plan) when dev_id = fd -> Some plan
        | _ -> None
      in
      let fifo = admission.(dev_id) in
      let dev_gate =
        if Queue.length fifo >= config.queue_depth then Queue.peek fifo
        else 0.0
      in
      let tq = Hashtbl.find tenant_inflight spec.js_tenant in
      let ten_gate =
        if Queue.length tq >= tenant_cap then Queue.peek tq else 0.0
      in
      let brk_gate =
        match breakers with
        | None -> 0.0
        | Some bks ->
          Option.value ~default:0.0 (Breaker.admit_time_s bks.(dev_id))
      in
      let start_s =
        Float.max arrival (Float.max dev_gate (Float.max ten_gate brk_gate))
      in
      match effective_deadline spec with
      | Some d when start_s -. arrival > d ->
        (* Honest cancellation: the job is abandoned the moment its
           deadline passes, charged only the wait — no slot is consumed
           and no device time accrues. *)
        shed_job idx ~reason:"deadline" ~time_s:(arrival +. d) ~wait_s:d
      | _ ->
        if Queue.length fifo >= config.queue_depth then ignore (Queue.pop fifo);
        if Queue.length tq >= tenant_cap then ignore (Queue.pop tq);
        (match breakers with
        | Some bks -> Breaker.note_admitted bks.(dev_id) ~now_s:start_s
        | None -> ());
        let res = spec.js_run ?faults ~sched ~device ~start_s () in
        (* Admission is charged to the device the job was enqueued on,
           even if a drain later moved it — the slot there was held
           regardless. *)
        Queue.push res.Executor.finish_s fifo;
        Queue.push res.Executor.finish_s tq;
        (match breakers with
        | Some bks ->
          let ok =
            res.Executor.retries = 0
            && (not res.Executor.degraded)
            && (not res.Executor.drained)
            && res.Executor.faults_injected = 0
          in
          Breaker.record bks.(dev_id) ~now_s:res.Executor.finish_s ~ok
        | None -> ());
        Hashtbl.replace finished spec.js_name res.Executor.finish_s;
        let latency = res.Executor.finish_s -. arrival in
        Ftn_obs.Metrics.observe ~registry "sched.job_latency_s" latency;
        Ftn_obs.Metrics.observe ~registry "sched.admission_wait_s"
          (start_s -. arrival);
        Ftn_obs.Metrics.observe ~registry (tenant_key spec.js_tenant) latency;
        (match config.slo_s with
        | Some slo when latency > slo ->
          incr slo_violations;
          Hashtbl.replace tenant_slo spec.js_tenant
            (1
            + Option.value ~default:0
                (Hashtbl.find_opt tenant_slo spec.js_tenant))
        | _ -> ());
        results.(idx) <- Some res)
  in
  (* Overload shedding: when more work is queued than the watermark
     allows, shed the excess — lowest priority first, then furthest past
     its deadline, then newest submission — before it can grow the
     tail. Shed entries stay in their tenant queues marked, and are
     discarded when they reach the head. *)
  let maybe_shed_overload () =
    match config.shed_watermark with
    | None -> ()
    | Some wm ->
      let queued =
        List.concat_map
          (fun t ->
            List.filter
              (fun i -> not shed_mark.(i))
              (List.of_seq (Queue.to_seq (Hashtbl.find queues t))))
          tenants
      in
      let depth = List.length queued in
      if depth > wm then begin
        let now = Scheduler.elapsed_s sched in
        let overdue idx =
          let spec = specs_arr.(idx) in
          match effective_deadline spec with
          | None -> Float.neg_infinity
          | Some d -> now -. (arrival_of spec +. d)
        in
        let victims =
          List.sort
            (fun a b ->
              let pa = specs_arr.(a).js_prio and pb = specs_arr.(b).js_prio in
              if pa <> pb then compare pa pb
              else
                let c = Float.compare (overdue b) (overdue a) in
                if c <> 0 then c else compare b a)
            queued
        in
        let rec take k = function
          | idx :: rest when k > 0 ->
            let wait =
              Float.max 0.0 (now -. arrival_of specs_arr.(idx))
            in
            shed_job idx ~reason:"overload" ~time_s:now ~wait_s:wait;
            take (k - 1) rest
          | _ -> ()
        in
        take (depth - wm) victims
      end
  in
  (* Round-robin dispatch: one ready job per tenant per cycle (shed
     entries at the head are discarded for free). A cycle with queued
     jobs but no progress means every head is waiting on a dependency
     that can never finish (cyclic or unknown) — those jobs are dropped,
     each with a structured diagnostic, rather than looping forever. *)
  let rec cycle () =
    maybe_shed_overload ();
    let progress = ref false in
    List.iter
      (fun tenant ->
        let q = Hashtbl.find queues tenant in
        while (not (Queue.is_empty q)) && shed_mark.(Queue.peek q) do
          ignore (Queue.pop q);
          progress := true
        done;
        if not (Queue.is_empty q) then begin
          let idx = Queue.peek q in
          let spec = specs_arr.(idx) in
          match
            List.find_opt (fun d -> Hashtbl.mem shed_by_name d) spec.js_deps
          with
          | Some _ ->
            (* A dependency was shed, so this job can never become
               ready: cascade the shed rather than park forever. *)
            ignore (Queue.pop q);
            shed_job idx ~reason:"dep_shed" ~time_s:(arrival_of spec)
              ~wait_s:0.0;
            progress := true
          | None ->
            if List.for_all (fun d -> Hashtbl.mem finished d) spec.js_deps
            then begin
              ignore (Queue.pop q);
              run_one idx;
              progress := true
            end
        end)
      tenants;
    let remaining =
      List.exists
        (fun t -> not (Queue.is_empty (Hashtbl.find queues t)))
        tenants
    in
    if remaining then
      if !progress then cycle ()
      else
        List.iter
          (fun t ->
            let q = Hashtbl.find queues t in
            Queue.iter
              (fun idx ->
                if not shed_mark.(idx) then begin
                  incr dropped;
                  let spec = specs_arr.(idx) in
                  match
                    List.find_opt
                      (fun d -> not (Hashtbl.mem finished d))
                      spec.js_deps
                  with
                  | Some dep when Hashtbl.mem submitted dep ->
                    Ftn_diag.Diag_engine.warning diag
                      (Fmt.str "job %S dropped: cyclic dependency on %S"
                         spec.js_name dep)
                  | Some dep ->
                    Ftn_diag.Diag_engine.warning diag
                      (Fmt.str "job %S dropped: unknown dependency %S"
                         spec.js_name dep)
                  | None ->
                    Ftn_diag.Diag_engine.warning diag
                      (Fmt.str
                         "job %S dropped: queued behind an undispatchable \
                          job for tenant %S"
                         spec.js_name spec.js_tenant)
                end)
              q;
            Queue.clear q)
          tenants
  in
  cycle ();
  let completed = ref [] in
  let output = Buffer.create 256 in
  let total_kernel = ref 0.0 and total_transfer = ref 0.0 in
  let degraded = ref 0 and drained = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | None -> ()
      | Some (res : Executor.result) ->
        completed := (specs_arr.(i).js_name, res) :: !completed;
        Buffer.add_string output res.Executor.output;
        total_kernel := !total_kernel +. res.Executor.kernel_time_s;
        total_transfer := !total_transfer +. res.Executor.transfer_time_s;
        if res.Executor.degraded then incr degraded;
        if res.Executor.drained then incr drained)
    results;
  let jobs_run = List.length !completed in
  let elapsed = Scheduler.elapsed_s sched in
  let quantile ?(key = "sched.job_latency_s") q =
    Option.value ~default:0.0
      (Ftn_obs.Metrics.histogram_quantile ~registry key q)
  in
  let sheds = List.rev !sheds in
  let tenant_stats_list =
    List.map
      (fun t ->
        let key = tenant_key t in
        let t_run = ref 0 in
        Array.iteri
          (fun i r ->
            if r <> None && String.equal specs_arr.(i).js_tenant t then
              incr t_run)
          results;
        {
          t_name = t;
          t_run = !t_run;
          t_shed =
            List.length
              (List.filter (fun s -> String.equal s.sh_tenant t) sheds);
          t_p50_s = quantile ~key 0.5;
          t_p90_s = quantile ~key 0.9;
          t_p99_s = quantile ~key 0.99;
          t_slo_violations =
            Option.value ~default:0 (Hashtbl.find_opt tenant_slo t);
        })
      tenants
  in
  {
    jobs_run;
    jobs_dropped = !dropped;
    jobs_shed = !shed_count;
    elapsed_s = elapsed;
    throughput_jps =
      (if elapsed > 0.0 then float_of_int jobs_run /. elapsed else 0.0);
    p50_latency_s = quantile 0.5;
    p90_latency_s = quantile 0.9;
    p99_latency_s = quantile 0.99;
    total_kernel_s = !total_kernel;
    total_transfer_s = !total_transfer;
    degraded_jobs = !degraded;
    drained_jobs = !drained;
    slo_violations = !slo_violations;
    shed_wait_s = !shed_wait;
    sheds;
    tenants = tenant_stats_list;
    breakers =
      (match breakers with
      | None -> []
      | Some bks -> Array.to_list (Array.map Breaker.snapshot bks));
    trace;
    output = Buffer.contents output;
    results = List.rev !completed;
    scheduler = sched;
  }

let pp_stats fmt (s : stats) =
  let pp_slo fmt s =
    if s.slo_violations > 0 then
      Fmt.pf fmt "@,slo         %d violation%s" s.slo_violations
        (if s.slo_violations = 1 then "" else "s")
  in
  let pp_shed fmt s =
    if s.jobs_shed > 0 then
      Fmt.pf fmt "@,shed wait   %.3f us total" (s.shed_wait_s *. 1e6)
  in
  Fmt.pf fmt
    "@[<v>jobs        %d run, %d dropped, %d shed@,\
     elapsed     %.3f us (simulated makespan)@,\
     throughput  %.1f jobs/s (simulated)@,\
     latency     p50 %.3f us, p90 %.3f us, p99 %.3f us@,\
     kernel      %.3f us total@,\
     transfer    %.3f us total@,\
     degraded    %d job%s, %d drained%a%a@]"
    s.jobs_run s.jobs_dropped s.jobs_shed (s.elapsed_s *. 1e6)
    s.throughput_jps
    (s.p50_latency_s *. 1e6)
    (s.p90_latency_s *. 1e6)
    (s.p99_latency_s *. 1e6)
    (s.total_kernel_s *. 1e6)
    (s.total_transfer_s *. 1e6)
    s.degraded_jobs
    (if s.degraded_jobs = 1 then "" else "s")
    s.drained_jobs pp_slo s pp_shed s
