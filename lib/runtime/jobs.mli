(** Job queue for the multi-device runtime: admission control,
    per-tenant round-robin dispatch, tail-latency accounting and a
    resilience/QoS layer (deadlines, tenant quotas, per-device circuit
    breakers, overload shedding) over a shared {!Scheduler}.

    Dispatch is deterministic: tenants are cycled in first-appearance
    order taking one dependency-ready job each per cycle, devices are
    chosen least-loaded-first (gated by their circuit breaker) with
    lowest-id tie-break, shedding depends only on simulated timestamps,
    and outputs are concatenated in submission order — so a job list
    produces byte-identical output whatever the device count. Every
    resilience feature defaults to off, and a default-config run is
    byte-identical to the pre-resilience queue. *)

type spec = {
  js_name : string;  (** Unique job name; dependencies refer to it. *)
  js_tenant : string;
  js_deps : string list;
      (** Names of jobs whose completion gates this one's arrival. *)
  js_prio : int;
      (** Higher keeps the job longer under overload shedding; 0 default. *)
  js_deadline_s : float option;
      (** Max admission wait (arrival to start) before the job is shed;
          overrides the queue-wide default. *)
  js_run :
    ?faults:Ftn_fault.Fault.plan ->
    sched:Scheduler.t ->
    device:Scheduler.device ->
    start_s:float ->
    unit ->
    Executor.result;
      (** The job body — typically a closure over a compiled host module
          calling {!Executor.run} with the given placement. [faults] is
          injected by the queue when the job lands on the configured
          fault device. *)
}

val job :
  ?tenant:string ->
  ?deps:string list ->
  ?prio:int ->
  ?deadline_s:float ->
  name:string ->
  (?faults:Ftn_fault.Fault.plan ->
  sched:Scheduler.t ->
  device:Scheduler.device ->
  start_s:float ->
  unit ->
  Executor.result) ->
  spec
(** [tenant] defaults to ["default"], [deps] to none, [prio] to 0,
    [deadline_s] to the queue-wide default. *)

type config = {
  devices : int;
  queue_depth : int;
      (** In-flight jobs a device accepts before admission blocks on the
          oldest completion; must be [>= 1]. *)
  fault_device : (int * Ftn_fault.Fault.plan) option;
      (** Inject the plan into every job placed on this device id —
          models a persistently bad board; with the default retry
          policy's drain the device fails on first persistent kernel
          fault and its queue migrates to healthy peers (or the host CPU
          when none remain). *)
  default_deadline_s : float option;
      (** Queue-wide admission deadline for jobs without their own: a
          job whose start would exceed [arrival + deadline] is shed at
          that instant, charged only the deadline's worth of wait. *)
  tenant_quota : int option;
      (** Max in-flight jobs per tenant; at the cap the tenant's next
          admission gates on its own oldest completion. *)
  tenant_share : float option;
      (** Max fraction (in (0, 1]) of total admission capacity
          ([devices * queue_depth]) one tenant may hold in flight;
          combined with [tenant_quota] the tighter cap wins. *)
  slo_s : float option;
      (** Arrival-to-finish latency objective; completions above it
          count into [slo_violations] (globally and per tenant). *)
  breaker : Breaker.config option;
      (** Per-device circuit breakers fed by job outcomes (retries,
          faults, degradation, drain). *)
  shed_watermark : int option;
      (** Aggregate queued jobs above which overload shedding discards
          the excess — lowest priority first, then furthest past
          deadline, then newest submission. *)
}

val default_config : config
(** 1 device, queue depth 8, no fault device, every resilience feature
    off. *)

type shed = {
  sh_job : string;
  sh_tenant : string;
  sh_reason : string;
      (** ["deadline"], ["overload"], ["dep_shed"] (a dependency was
          shed) or ["no_device"] (all devices failed or quarantined). *)
  sh_wait_s : float;  (** Queue wait charged to the shed job. *)
  sh_time_s : float;  (** Simulated time the shed was decided. *)
}

type tenant_stats = {
  t_name : string;
  t_run : int;
  t_shed : int;
  t_p50_s : float;
  t_p90_s : float;
  t_p99_s : float;
  t_slo_violations : int;
}

type stats = {
  jobs_run : int;
  jobs_dropped : int;
      (** Jobs never dispatched because a dependency could not finish
          (cyclic or unknown name); each one emits a structured warning
          through the diagnostics engine. *)
  jobs_shed : int;
      (** Jobs cancelled by the resilience layer before running; see
          [sheds] for the reasons. *)
  elapsed_s : float;  (** Simulated makespan: {!Scheduler.elapsed_s}. *)
  throughput_jps : float;  (** [jobs_run / elapsed_s] (simulated). *)
  p50_latency_s : float;
      (** Median arrival-to-finish latency (arrival = last dependency's
          finish), from the queue's private histogram registry. *)
  p90_latency_s : float;
  p99_latency_s : float;
  total_kernel_s : float;  (** Summed over completed jobs. *)
  total_transfer_s : float;
  degraded_jobs : int;  (** Jobs that ran at least one kernel on the CPU. *)
  drained_jobs : int;  (** Jobs migrated off a failed device. *)
  slo_violations : int;  (** 0 unless [config.slo_s] is set. *)
  shed_wait_s : float;  (** Total queue wait charged to shed jobs. *)
  sheds : shed list;  (** In shed order. *)
  tenants : tenant_stats list;  (** In first-appearance order. *)
  breakers : Breaker.snapshot list;  (** Empty without [config.breaker]. *)
  trace : Trace.t;
      (** Queue-level events: breaker transitions and sheds. *)
  output : string;  (** All job outputs, concatenated in submission order. *)
  results : (string * Executor.result) list;  (** Submission order. *)
  scheduler : Scheduler.t;  (** For per-device snapshots after the run. *)
}

val run : ?config:config -> ?diag:Ftn_diag.Diag_engine.t -> spec list -> stats
(** Dispatch every job and return the aggregate statistics. Every
    submitted job ends up in exactly one of [jobs_run], [jobs_dropped]
    or [jobs_shed]. Dropped jobs are reported as warnings through
    [diag] (default {!Ftn_diag.Diag_engine.default}). Raises
    [Invalid_argument] on a non-positive [queue_depth], [tenant_quota]
    or [shed_watermark], or a [tenant_share] outside (0, 1]. *)

val pp_stats : Format.formatter -> stats -> unit
