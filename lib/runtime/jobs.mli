(** Job queue for the multi-device runtime: admission control,
    per-tenant round-robin dispatch and tail-latency accounting over a
    shared {!Scheduler}.

    Dispatch is deterministic: tenants are cycled in first-appearance
    order taking one dependency-ready job each per cycle, devices are
    chosen least-loaded-first with lowest-id tie-break, and outputs are
    concatenated in submission order — so a job list produces
    byte-identical output whatever the device count. *)

type spec = {
  js_name : string;  (** Unique job name; dependencies refer to it. *)
  js_tenant : string;
  js_deps : string list;
      (** Names of jobs whose completion gates this one's arrival. *)
  js_run :
    ?faults:Ftn_fault.Fault.plan ->
    sched:Scheduler.t ->
    device:Scheduler.device ->
    start_s:float ->
    unit ->
    Executor.result;
      (** The job body — typically a closure over a compiled host module
          calling {!Executor.run} with the given placement. [faults] is
          injected by the queue when the job lands on the configured
          fault device. *)
}

val job :
  ?tenant:string ->
  ?deps:string list ->
  name:string ->
  (?faults:Ftn_fault.Fault.plan ->
  sched:Scheduler.t ->
  device:Scheduler.device ->
  start_s:float ->
  unit ->
  Executor.result) ->
  spec
(** [tenant] defaults to ["default"], [deps] to none. *)

type config = {
  devices : int;
  queue_depth : int;
      (** In-flight jobs a device accepts before admission blocks on the
          oldest completion; must be [>= 1]. *)
  fault_device : (int * Ftn_fault.Fault.plan) option;
      (** Inject the plan into every job placed on this device id —
          models a persistently bad board; with the default retry
          policy's drain the device fails on first persistent kernel
          fault and its queue migrates to healthy peers (or the host CPU
          when none remain). *)
}

val default_config : config
(** 1 device, queue depth 8, no fault device. *)

type stats = {
  jobs_run : int;
  jobs_dropped : int;
      (** Jobs never dispatched because a dependency could not finish
          (cyclic or unknown name). *)
  elapsed_s : float;  (** Simulated makespan: {!Scheduler.elapsed_s}. *)
  throughput_jps : float;  (** [jobs_run / elapsed_s] (simulated). *)
  p50_latency_s : float;
      (** Median arrival-to-finish latency (arrival = last dependency's
          finish), from the queue's private histogram registry. *)
  p99_latency_s : float;
  total_kernel_s : float;  (** Summed over completed jobs. *)
  total_transfer_s : float;
  degraded_jobs : int;  (** Jobs that ran at least one kernel on the CPU. *)
  drained_jobs : int;  (** Jobs migrated off a failed device. *)
  output : string;  (** All job outputs, concatenated in submission order. *)
  results : (string * Executor.result) list;  (** Submission order. *)
  scheduler : Scheduler.t;  (** For per-device snapshots after the run. *)
}

val run : ?config:config -> spec list -> stats
(** Dispatch every job and return the aggregate statistics. Raises
    [Invalid_argument] if [config.queue_depth < 1]. *)

val pp_stats : Format.formatter -> stats -> unit
