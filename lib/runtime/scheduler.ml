(* Multi-device scheduler for the simulated host runtime.

   Simulates N identical accelerator cards, each with four engine lanes
   (duplex DMA, compute, control; see {!Event.lane}) and its own
   compute-unit statistics. Time is simulated: each lane remembers when
   it next becomes free, and submitting an operation computes

     start = max(ready time, lane availability, dependency finishes)

   then advances the lane to the operation's finish. Global elapsed time
   is therefore the maximum over all lanes of all devices — the makespan
   of the event graph — while per-track busy totals keep accumulating
   durations exactly as the synchronous executor did, so a single
   chained program sees timings bit-identical to the old model and
   concurrent programs genuinely overlap transfers with compute.

   Devices can be marked failed (a persistent fault drained its work to
   a peer) or degraded (a kernel on it fell back to the host CPU);
   failed devices are skipped by placement. *)

open Ftn_hlsim
module Fault = Ftn_fault.Fault

type device = {
  dev_id : int;
  mutable copy_in_avail_s : float;
  mutable copy_out_avail_s : float;
  mutable compute_avail_s : float;
  mutable ctrl_avail_s : float;
  mutable dev_kernel_s : float;
  mutable dev_transfer_s : float;
  mutable dev_overhead_s : float;
  mutable dev_fallback_s : float;
  mutable dev_launches : int;
  mutable dev_jobs : int;
  mutable dev_degraded : bool;
  mutable dev_failed : bool;
  dev_cus : Cu_stats.t;
}

type t = {
  devices : device array;
  mutable next_ev : int;
  mutable drains : int;
      (* queues drained to a peer after a persistent device fault *)
}

let make_device id =
  {
    dev_id = id;
    copy_in_avail_s = 0.0;
    copy_out_avail_s = 0.0;
    compute_avail_s = 0.0;
    ctrl_avail_s = 0.0;
    dev_kernel_s = 0.0;
    dev_transfer_s = 0.0;
    dev_overhead_s = 0.0;
    dev_fallback_s = 0.0;
    dev_launches = 0;
    dev_jobs = 0;
    dev_degraded = false;
    dev_failed = false;
    dev_cus = Cu_stats.create ();
  }

let create ?(devices = 1) () =
  if devices < 1 then
    invalid_arg (Fmt.str "Scheduler.create: %d devices" devices);
  {
    devices = Array.init devices make_device;
    next_ev = 0;
    drains = 0;
  }

let device_count t = Array.length t.devices
let device t id = t.devices.(id)
let devices t = Array.to_list t.devices

let lane_avail_s dev = function
  | Event.Copy_in -> dev.copy_in_avail_s
  | Event.Copy_out -> dev.copy_out_avail_s
  | Event.Compute -> dev.compute_avail_s
  | Event.Ctrl -> dev.ctrl_avail_s

let set_lane_avail dev lane v =
  match lane with
  | Event.Copy_in -> dev.copy_in_avail_s <- v
  | Event.Copy_out -> dev.copy_out_avail_s <- v
  | Event.Compute -> dev.compute_avail_s <- v
  | Event.Ctrl -> dev.ctrl_avail_s <- v

(* Schedule one operation on [device]'s [lane]. [submit_s] is when the
   host enqueued it (queue wait is measured from here); [ready_s]
   (default [submit_s]) is the earliest the operation may start — the
   executor passes its program cursor so an operation never starts
   before the host-side work that precedes it. *)
let submit t ~device:dev ~lane ~track ~label ~submit_s ?ready_s
    ?(deps = []) ~dur_s () =
  let ready = Option.value ~default:submit_s ready_s in
  let start =
    List.fold_left
      (fun acc (d : Event.t) -> Float.max acc d.Event.ev_finish_s)
      (Float.max ready (lane_avail_s dev lane))
      deps
  in
  let finish = start +. dur_s in
  set_lane_avail dev lane finish;
  (match track with
  | "kernel" -> dev.dev_kernel_s <- dev.dev_kernel_s +. dur_s
  | "transfer" -> dev.dev_transfer_s <- dev.dev_transfer_s +. dur_s
  | "overhead" -> dev.dev_overhead_s <- dev.dev_overhead_s +. dur_s
  | "fallback" -> dev.dev_fallback_s <- dev.dev_fallback_s +. dur_s
  | _ -> ());
  let id = t.next_ev in
  t.next_ev <- id + 1;
  {
    Event.ev_id = id;
    ev_device = dev.dev_id;
    ev_lane = lane;
    ev_track = track;
    ev_label = label;
    ev_submit_s = submit_s;
    ev_start_s = start;
    ev_finish_s = finish;
    ev_deps = List.map (fun (d : Event.t) -> d.Event.ev_id) deps;
  }

let device_busy_s dev =
  dev.dev_kernel_s +. dev.dev_transfer_s +. dev.dev_overhead_s
  +. dev.dev_fallback_s

let device_makespan_s dev =
  Float.max
    (Float.max dev.copy_in_avail_s dev.copy_out_avail_s)
    (Float.max dev.compute_avail_s dev.ctrl_avail_s)

(* Makespan of everything scheduled so far: the latest lane-free time
   across all devices — max over dependency chains, not a sum. *)
let elapsed_s t =
  Array.fold_left
    (fun acc dev -> Float.max acc (device_makespan_s dev))
    0.0 t.devices

(* Placement: the non-failed device whose compute engine frees first
   (ties to the lowest id, so a fresh scheduler fills device 0 first). *)
let pick_device t =
  let best = ref None in
  Array.iter
    (fun dev ->
      if not dev.dev_failed then
        match !best with
        | Some b when b.compute_avail_s <= dev.compute_avail_s -> ()
        | _ -> best := Some dev)
    t.devices;
  match !best with
  | Some dev -> dev
  | None -> Fault.fail (Fault.Invalid_host
      { op = "scheduler"; reason = "all simulated devices have failed" })

let healthy_peer t ~except =
  let best = ref None in
  Array.iter
    (fun dev ->
      if (not dev.dev_failed) && dev.dev_id <> except then
        match !best with
        | Some b when b.compute_avail_s <= dev.compute_avail_s -> ()
        | _ -> best := Some dev)
    t.devices;
  !best

let fail_device t dev =
  if not dev.dev_failed then begin
    dev.dev_failed <- true;
    t.drains <- t.drains + 1
  end

let drains t = t.drains

type device_snapshot = {
  ds_id : int;
  ds_jobs : int;
  ds_launches : int;
  ds_kernel_s : float;
  ds_transfer_s : float;
  ds_overhead_s : float;
  ds_fallback_s : float;
  ds_busy_s : float;
  ds_makespan_s : float;
  ds_degraded : bool;
  ds_failed : bool;
  ds_cus : Cu_stats.snapshot list;
}

let snapshot_device dev =
  {
    ds_id = dev.dev_id;
    ds_jobs = dev.dev_jobs;
    ds_launches = dev.dev_launches;
    ds_kernel_s = dev.dev_kernel_s;
    ds_transfer_s = dev.dev_transfer_s;
    ds_overhead_s = dev.dev_overhead_s;
    ds_fallback_s = dev.dev_fallback_s;
    ds_busy_s = device_busy_s dev;
    ds_makespan_s = device_makespan_s dev;
    ds_degraded = dev.dev_degraded;
    ds_failed = dev.dev_failed;
    ds_cus = Cu_stats.snapshot dev.dev_cus ~window_s:(device_makespan_s dev);
  }

let snapshot t = List.map snapshot_device (Array.to_list t.devices)

let pp_device_snapshot fmt ds =
  Fmt.pf fmt
    "device %d: %d job%s, %d launches, busy %.3f ms (kernel %.3f, transfer \
     %.3f, overhead %.3f, fallback %.3f)%s%s"
    ds.ds_id ds.ds_jobs
    (if ds.ds_jobs = 1 then "" else "s")
    ds.ds_launches
    (ds.ds_busy_s *. 1e3)
    (ds.ds_kernel_s *. 1e3)
    (ds.ds_transfer_s *. 1e3)
    (ds.ds_overhead_s *. 1e3)
    (ds.ds_fallback_s *. 1e3)
    (if ds.ds_degraded then " [degraded]" else "")
    (if ds.ds_failed then " [failed]" else "")
