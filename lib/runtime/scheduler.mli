(** Multi-device scheduler for the simulated host runtime: N identical
    accelerator cards, each with four engine lanes (duplex DMA, compute,
    control) and its own {!Ftn_hlsim.Cu_stats} table.

    Submitting an operation computes
    [start = max(ready, lane availability, dependency finishes)] and
    advances the lane, so a single chained program sees the same timings
    as the old synchronous executor while concurrent programs genuinely
    overlap transfers with compute. Global elapsed time is the makespan
    of the event graph (max over dependency chains), not a sum. *)

type device = {
  dev_id : int;
  mutable copy_in_avail_s : float;
  mutable copy_out_avail_s : float;
  mutable compute_avail_s : float;
  mutable ctrl_avail_s : float;
  mutable dev_kernel_s : float;
  mutable dev_transfer_s : float;
  mutable dev_overhead_s : float;
  mutable dev_fallback_s : float;
  mutable dev_launches : int;
  mutable dev_jobs : int;
  mutable dev_degraded : bool;
      (** A kernel on this device fell back to the host CPU. *)
  mutable dev_failed : bool;
      (** Persistently faulted; its queue was drained to a peer and
          placement skips it. *)
  dev_cus : Ftn_hlsim.Cu_stats.t;
}

type t

val create : ?devices:int -> unit -> t
(** [devices] defaults to 1; raises [Invalid_argument] below 1. *)

val device_count : t -> int
val device : t -> int -> device
val devices : t -> device list

val submit :
  t ->
  device:device ->
  lane:Event.lane ->
  track:string ->
  label:string ->
  submit_s:float ->
  ?ready_s:float ->
  ?deps:Event.t list ->
  dur_s:float ->
  unit ->
  Event.t
(** Schedule one operation. [submit_s] is when the host enqueued it
    (queue wait is measured from here); [ready_s] (default [submit_s])
    is the earliest it may start. The event starts at
    [max(ready_s, lane availability, dependency finishes)] and the lane
    advances to its finish. *)

val lane_avail_s : device -> Event.lane -> float
(** When the lane next becomes free. *)

val elapsed_s : t -> float
(** Makespan of everything scheduled so far across all devices. *)

val device_busy_s : device -> float
val device_makespan_s : device -> float

val pick_device : t -> device
(** The non-failed device whose compute engine frees first (ties to the
    lowest id). Raises a structured {!Ftn_fault.Fault.Invalid_host}
    error when every device has failed. *)

val healthy_peer : t -> except:int -> device option
(** Least-loaded non-failed device other than [except], for draining a
    persistently faulted device's queue. *)

val fail_device : t -> device -> unit
(** Mark the device failed and count the drain. Idempotent. *)

val drains : t -> int

type device_snapshot = {
  ds_id : int;
  ds_jobs : int;
  ds_launches : int;
  ds_kernel_s : float;
  ds_transfer_s : float;
  ds_overhead_s : float;
  ds_fallback_s : float;
  ds_busy_s : float;
  ds_makespan_s : float;
  ds_degraded : bool;
  ds_failed : bool;
  ds_cus : Ftn_hlsim.Cu_stats.snapshot list;
}

val snapshot_device : device -> device_snapshot
val snapshot : t -> device_snapshot list
val pp_device_snapshot : Format.formatter -> device_snapshot -> unit
