(* Event trace of simulated device activity: transfers, kernel launches,
   allocations. Inspectable by tests and printed by the CLI. *)

type direction =
  | Host_to_device
  | Device_to_host

type event =
  | Alloc of {
      name : string;
      bytes : int;
      time_s : float;
    }
  | Transfer of {
      name : string;
      direction : direction;
      bytes : int;
      time_s : float;
    }
  | Launch of {
      kernel : string;
      kernel_time_s : float;
      overhead_s : float;
      queue_wait_s : float;
          (* pickup minus enqueue on the owning device's timeline *)
      device : int;
    }
  | Fault of {
      target : string;
      kind : string;  (** Fault.kind_code of the injected fault. *)
      attempt : int;
      time_s : float;  (** Simulated cost charged on detection. *)
    }
  | Fallback of {
      kernel : string;
      steps : int;  (** Interpreter steps of the host-CPU execution. *)
      time_s : float;
    }
  | Breaker of {
      device : int;
      from_ : string;
      to_ : string;
      trips : int;
      time_s : float;
    }
  | Shed of {
      job : string;
      tenant : string;
      reason : string;  (* deadline | overload | dep_shed | no_device *)
      wait_s : float;  (* queue wait charged to the shed job *)
      time_s : float;
    }

type t = { mutable events : event list (* reversed *) }

let create () = { events = [] }
let record t e = t.events <- e :: t.events
let events t = List.rev t.events

let count_launches t =
  List.length (List.filter (function Launch _ -> true | _ -> false) t.events)

let bytes_transferred t =
  List.fold_left
    (fun acc e ->
      match e with Transfer { bytes; _ } -> acc + bytes | _ -> acc)
    0 t.events

let pp_event fmt = function
  | Alloc { name; bytes; time_s } ->
    Fmt.pf fmt "alloc    %-12s %10d B  %.3f us" name bytes (time_s *. 1e6)
  | Transfer { name; direction; bytes; time_s } ->
    Fmt.pf fmt "%s %-12s %10d B  %.3f us"
      (match direction with
      | Host_to_device -> "h2d     "
      | Device_to_host -> "d2h     ")
      name bytes (time_s *. 1e6)
  | Launch { kernel; kernel_time_s; overhead_s; queue_wait_s; device } ->
    Fmt.pf fmt "launch   %-12s  kernel %.3f us (+%.3f us overhead%s) d%d"
      kernel (kernel_time_s *. 1e6) (overhead_s *. 1e6)
      (if queue_wait_s > 0.0 then
         Fmt.str ", %.3f us queued" (queue_wait_s *. 1e6)
       else "")
      device
  | Fault { target; kind; attempt; time_s } ->
    Fmt.pf fmt "fault    %-12s  %s attempt %d  %.3f us" target kind attempt
      (time_s *. 1e6)
  | Fallback { kernel; steps; time_s } ->
    Fmt.pf fmt "fallback %-12s  %d host steps  %.3f us" kernel steps
      (time_s *. 1e6)
  | Breaker { device; from_; to_; trips; time_s } ->
    Fmt.pf fmt "breaker  d%-11d  %s -> %s (trip %d)  %.3f us" device from_ to_
      trips (time_s *. 1e6)
  | Shed { job; tenant; reason; wait_s; time_s } ->
    Fmt.pf fmt "shed     %-12s  tenant %s, %s, waited %.3f us  %.3f us" job
      tenant reason (wait_s *. 1e6) (time_s *. 1e6)

let pp fmt t = Fmt.pf fmt "@[<v>%a@]" (Fmt.list pp_event) (events t)
