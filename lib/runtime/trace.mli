(** Event trace of simulated device activity: allocations, transfers and
    kernel launches, with the simulated cost of each. *)

type direction =
  | Host_to_device
  | Device_to_host

type event =
  | Alloc of {
      name : string;
      bytes : int;
      time_s : float;
    }
  | Transfer of {
      name : string;
      direction : direction;
      bytes : int;
      time_s : float;
    }
  | Launch of {
      kernel : string;
      kernel_time_s : float;
      overhead_s : float;
      queue_wait_s : float;
          (** Pickup minus enqueue on the owning device's timeline. *)
      device : int;  (** Simulated device the kernel ran on. *)
    }
  | Fault of {
      target : string;  (** Buffer or kernel the fault was injected into. *)
      kind : string;  (** {!Ftn_fault.Fault.kind_code} of the fault. *)
      attempt : int;
      time_s : float;  (** Simulated cost charged on detection. *)
    }
  | Fallback of {
      kernel : string;
      steps : int;  (** Interpreter steps of the host-CPU execution. *)
      time_s : float;
    }
  | Breaker of {
      device : int;
      from_ : string;  (** {!Breaker.state_name} before the transition. *)
      to_ : string;
      trips : int;  (** Cumulative trips after the transition. *)
      time_s : float;
    }
  | Shed of {
      job : string;
      tenant : string;
      reason : string;
          (** ["deadline"], ["overload"], ["dep_shed"] or ["no_device"]. *)
      wait_s : float;  (** Queue wait charged to the shed job. *)
      time_s : float;  (** Simulated time the shed was decided. *)
    }

type t

val create : unit -> t
val record : t -> event -> unit

val events : t -> event list
(** In program order. *)

val count_launches : t -> int
val bytes_transferred : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
