(* Backend abstraction layer: registry lookup and did-you-mean, the
   vitis/rv descriptors, the RISC-V timing/footprint model, both
   container formats (round-trip and cross-backend rejection), and the
   differential gate — the four evaluation programs must produce
   byte-identical output on every registered backend and on the CPU
   reference, with the fault and profiling layers working unmodified on
   each. *)

open Ftn_backend
module Executor = Ftn_runtime.Executor

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let vitis = Option.get (Backend_registry.find "vitis")
let rv = Option.get (Backend_registry.find "rv")

let options_for backend =
  {
    Core.Options.default with
    Core.Options.backend;
    xclbin_name = Backend.default_binary backend;
  }

let build backend src =
  let options = options_for backend in
  let art = Core.Compiler.compile ~options src in
  let bs = Core.Compiler.synthesise ~options art in
  (art, bs)

let run_on backend ?faults src =
  let art, bs = build backend src in
  Executor.run ?faults ~host:art.Core.Compiler.host ~bitstream:bs ()

(* --- registry --- *)

let registry_tests =
  [
    tc "both built-in backends are registered" (fun () ->
        check (Alcotest.list Alcotest.string) "names" [ "rv"; "vitis" ]
          (Backend_registry.names ()));
    tc "default backend is vitis" (fun () ->
        check Alcotest.string "name" "vitis"
          (Backend.name Backend_registry.default));
    tc "find misses return None" (fun () ->
        check Alcotest.bool "none" true (Backend_registry.find "cuda" = None));
    tc "unknown names fail through the diagnostic engine" (fun () ->
        let diag = Ftn_diag.Diag_engine.create () in
        try
          ignore (Backend_registry.find_exn ~diag "rvv");
          Alcotest.fail "expected Diag_failure"
        with Ftn_diag.Diag.Diag_failure diags ->
          let rendered = Ftn_diag.Diag.render_all diags in
          check Alcotest.bool "mentions the name" true
            (Astring_like.contains rendered "unknown backend 'rvv'");
          check Alcotest.bool "did-you-mean" true
            (Astring_like.contains rendered "did you mean 'rv'?"));
    tc "suggestion picks the edit-distance-closest name" (fun () ->
        check (Alcotest.option Alcotest.string) "vitis" (Some "vitis")
          (Backend_registry.suggestion "vits");
        check (Alcotest.option Alcotest.string) "no match" None
          (Backend_registry.suggestion "completely-unrelated"));
    tc "capability flags distinguish the backends" (fun () ->
        check Alcotest.bool "vitis does DSE" true
          (Backend.has_capability vitis Backend.Dse);
        check Alcotest.bool "rv has no DSE" false
          (Backend.has_capability rv Backend.Dse);
        check Alcotest.bool "rv has no dataflow fabric" false
          (Backend.has_capability rv Backend.Dataflow);
        List.iter
          (fun b ->
            check Alcotest.bool "fault-tolerant" true
              (Backend.has_capability b Backend.Fault_tolerance);
            check Alcotest.bool "profiled" true
              (Backend.has_capability b Backend.Profiling))
          [ vitis; rv ]);
    tc "only HLS backends expose an FPGA spec" (fun () ->
        check Alcotest.bool "vitis" true (Backend.fpga_spec vitis <> None);
        check Alcotest.bool "rv" true (Backend.fpga_spec rv = None));
  ]

(* --- rv model sanity --- *)

let rv_model_tests =
  let schedule_of src =
    let art = Core.Compiler.compile src in
    match art.Core.Compiler.device_hls with
    | Some d ->
      let fn =
        List.find
          (fun o ->
            Ftn_dialects.Func_d.is_func o && Ftn_dialects.Func_d.has_body o)
          (Ftn_ir.Op.module_body d)
      in
      Ftn_hlsim.Schedule.analyse_kernel Ftn_hlsim.Fpga_spec.u280 fn
    | None -> Alcotest.fail "no device module"
  in
  [
    tc "scalar loops pay full memory beats, vector loops amortise" (fun () ->
        let spec = Rv_spec.srv64 in
        let scalar =
          schedule_of (Ftn_linpack.Fortran_sources.sgesl ~n:32)
        in
        let vector =
          schedule_of (Ftn_linpack.Fortran_sources.saxpy ~n:64)
        in
        let loop ks =
          List.hd (Ftn_hlsim.Schedule.flatten_loops ks.Ftn_hlsim.Schedule.loops)
        in
        (* saxpy carries simdlen(10): it must map onto the vector unit *)
        check Alcotest.bool "saxpy vectorises" true
          (Rv_model.vectorised (loop vector));
        let c_scalar = Rv_model.cycles_per_iteration spec (loop scalar) in
        let c_vector = Rv_model.cycles_per_iteration spec (loop vector) in
        check Alcotest.bool "both positive" true
          (c_scalar > 0.0 && c_vector > 0.0);
        check Alcotest.bool "vector beats scalar memory pricing" true
          (c_vector < c_scalar));
    tc "imem overflow is a synthesis error" (fun () ->
        let tiny = { Rv_spec.srv64 with Rv_spec.imem_bytes = 8 } in
        let ks = schedule_of (Ftn_linpack.Fortran_sources.saxpy ~n:64) in
        let r = Rv_model.estimate tiny ks in
        check Alcotest.bool "over 100% imem" true
          (r.Ftn_hlsim.Resources.lut_pct > 100.0));
    tc "footprint reinterprets the shared report shape" (fun () ->
        let ks = schedule_of (Ftn_linpack.Fortran_sources.saxpy ~n:64) in
        let r = Rv_model.estimate Rv_spec.srv64 ks in
        let k = r.Ftn_hlsim.Resources.kernel in
        check Alcotest.bool "insn words" true
          (k.Ftn_hlsim.Resources.luts > 16);
        check Alcotest.bool "within imem" true
          (r.Ftn_hlsim.Resources.lut_pct < 100.0));
    tc "power model scales with duty" (fun () ->
        let ks = schedule_of (Ftn_linpack.Fortran_sources.saxpy ~n:64) in
        let r = Rv_model.estimate Rv_spec.srv64 ks in
        let idle =
          Rv_model.power_w Rv_spec.srv64 r ~kernel_time_s:0.0
            ~device_time_s:1.0
        in
        let busy =
          Rv_model.power_w Rv_spec.srv64 r ~kernel_time_s:1.0
            ~device_time_s:1.0
        in
        check (Alcotest.float 1e-9) "idle floor"
          Rv_spec.srv64.Rv_spec.static_power_w idle;
        check Alcotest.bool "busy above idle" true (busy > idle));
    tc "rv backend reports power through the descriptor" (fun () ->
        let run = ref None in
        let r =
          Core.Run.run
            ~options:(options_for rv)
            (Ftn_linpack.Fortran_sources.saxpy ~n:64)
        in
        run := Some r;
        let w = Core.Run.fpga_power ~backend:rv (Option.get !run) in
        check Alcotest.bool "above static floor" true
          (w >= Rv_spec.srv64.Rv_spec.static_power_w));
  ]

(* --- containers: round-trip and cross-backend rejection --- *)

let container_tests =
  let src = Ftn_linpack.Fortran_sources.saxpy ~n:32 in
  [
    tc "each container round-trips through its own backend" (fun () ->
        List.iter
          (fun backend ->
            let art, bs = build backend src in
            let bs' =
              Backend.load_bitstream backend (Backend.save_bitstream backend bs)
            in
            check Alcotest.string "backend field"
              bs.Ftn_hlsim.Bitstream.backend bs'.Ftn_hlsim.Bitstream.backend;
            check Alcotest.int "kernels"
              (List.length bs.Ftn_hlsim.Bitstream.kernels)
              (List.length bs'.Ftn_hlsim.Bitstream.kernels);
            let a = Executor.run ~host:art.Core.Compiler.host ~bitstream:bs () in
            let b = Executor.run ~host:art.Core.Compiler.host ~bitstream:bs' () in
            check Alcotest.string "same output" a.Executor.output
              b.Executor.output;
            check (Alcotest.float 1e-12) "same simulated time"
              a.Executor.device_time_s b.Executor.device_time_s)
          [ vitis; rv ]);
    tc "containers embed backend name and format version" (fun () ->
        let _, vbs = build vitis src in
        let _, rbs = build rv src in
        let vtext = Backend.save_bitstream vitis vbs in
        let rtext = Backend.save_bitstream rv rbs in
        check (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.int))
          "xclbin header"
          (Some ("XCLBIN", 2))
          (Ftn_hlsim.Bitstream_io.sniff vtext);
        check (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.int))
          "rvbin header"
          (Some ("RVBIN", 1))
          (Ftn_hlsim.Bitstream_io.sniff rtext);
        check (Alcotest.option Alcotest.string) "xclbin backend"
          (Some "vitis")
          (Ftn_hlsim.Bitstream_io.sniff_backend vtext);
        check (Alcotest.option Alcotest.string) "rvbin backend" (Some "rv")
          (Ftn_hlsim.Bitstream_io.sniff_backend rtext));
    tc "cross-backend loads are rejected both ways" (fun () ->
        let _, vbs = build vitis src in
        let _, rbs = build rv src in
        let vtext = Backend.save_bitstream vitis vbs in
        let rtext = Backend.save_bitstream rv rbs in
        let expect_mismatch ~loader ~expected ~found text =
          try
            ignore (Backend.load_bitstream loader text);
            Alcotest.fail "expected Backend_mismatch"
          with Ftn_hlsim.Bitstream_io.Backend_mismatch m ->
            check Alcotest.string "expected" expected m.expected;
            check Alcotest.string "found" found m.found
        in
        expect_mismatch ~loader:vitis ~expected:"vitis" ~found:"rv" rtext;
        expect_mismatch ~loader:rv ~expected:"rv" ~found:"vitis" vtext);
    tc "unreadable input is a format error, not a mismatch" (fun () ->
        List.iter
          (fun backend ->
            try
              ignore (Backend.load_bitstream backend "garbage");
              Alcotest.fail "expected Format_error"
            with Ftn_hlsim.Bitstream_io.Format_error _ -> ())
          [ vitis; rv ]);
  ]

(* --- differential gate: the four evaluation programs --- *)

let programs =
  [
    ("saxpy", Ftn_linpack.Fortran_sources.saxpy ~n:128);
    ("sgesl", Ftn_linpack.Fortran_sources.sgesl ~n:24);
    ("stencil", Ftn_linpack.Fortran_sources.stencil ~n:48 ~steps:4);
    ("reduction", Ftn_linpack.Fortran_sources.dot_product ~n:128 ~simdlen:10);
  ]

let differential_tests =
  [
    tc "all four programs run bit-identically on both backends" (fun () ->
        List.iter
          (fun (name, src) ->
            let v = run_on vitis src in
            let r = run_on rv src in
            check Alcotest.string (name ^ " output") v.Executor.output
              r.Executor.output;
            check Alcotest.int (name ^ " launches") v.Executor.kernel_launches
              r.Executor.kernel_launches;
            check Alcotest.int (name ^ " bytes")
              v.Executor.bytes_transferred r.Executor.bytes_transferred;
            (* the cost models differ, so simulated times must not be
               blindly shared between backends *)
            check Alcotest.bool (name ^ " distinct models") true
              (v.Executor.device_time_s <> r.Executor.device_time_s))
          programs);
    tc "backend outputs match the CPU reference" (fun () ->
        List.iter
          (fun (name, src) ->
            let cpu, _ = Core.Run.run_cpu src in
            let r = run_on rv src in
            check Alcotest.string (name ^ " vs cpu") cpu r.Executor.output)
          programs);
  ]

(* --- fault and profiling layers, parameterised over both backends --- *)

let layer_tests =
  let src = Ftn_linpack.Fortran_sources.sgesl ~n:24 in
  [
    tc "transient faults recover transparently on both backends" (fun () ->
        let plan =
          match
            Ftn_fault.Fault.parse_plan "transfer:nth=1,launch:nth=1"
          with
          | Ok p -> p
          | Error m -> Alcotest.fail m
        in
        List.iter
          (fun backend ->
            let clean = run_on backend src in
            let faulted = run_on backend ~faults:plan src in
            check Alcotest.string "same output" clean.Executor.output
              faulted.Executor.output;
            check Alcotest.bool "injected" true
              (faulted.Executor.faults_injected > 0);
            check Alcotest.bool "not degraded" false
              faulted.Executor.degraded;
            check Alcotest.bool "recovery charged time" true
              (faulted.Executor.device_time_s > clean.Executor.device_time_s))
          [ vitis; rv ]);
    tc "persistent kernel faults degrade to the CPU on both backends"
      (fun () ->
        let plan =
          match Ftn_fault.Fault.parse_plan "launch:nth=1:persistent" with
          | Ok p -> p
          | Error m -> Alcotest.fail m
        in
        List.iter
          (fun backend ->
            let clean = run_on backend src in
            let faulted = run_on backend ~faults:plan src in
            check Alcotest.string "same output" clean.Executor.output
              faulted.Executor.output;
            check Alcotest.bool "degraded" true faulted.Executor.degraded;
            check Alcotest.bool "fell back" true
              (faulted.Executor.cpu_fallbacks >= 1))
          [ vitis; rv ]);
    tc "profiling leaves output unchanged on both backends" (fun () ->
        List.iter
          (fun backend ->
            let off = run_on backend src in
            Ftn_obs.Profile.reset ();
            Ftn_obs.Profile.set_enabled true;
            let on =
              Fun.protect
                ~finally:(fun () -> Ftn_obs.Profile.set_enabled false)
                (fun () -> run_on backend src)
            in
            check Alcotest.string "same output" off.Executor.output
              on.Executor.output;
            check Alcotest.bool "profile recorded" true
              (Ftn_obs.Profile.total_ops () > 0))
          [ vitis; rv ]);
  ]

let () =
  Alcotest.run "backend"
    [
      ("registry", registry_tests);
      ("rv-model", rv_model_tests);
      ("containers", container_tests);
      ("differential", differential_tests);
      ("layers", layer_tests);
    ]
