(* Tests for the diagnostics subsystem: caret rendering, the accumulating
   engine with its --max-errors cap, loc(...) round-tripping through the
   printer/parser, and the kernel_create isolation rule in the verifier. *)

open Ftn_ir
open Ftn_dialects
module Loc = Ftn_diag.Loc
module Diag = Ftn_diag.Diag
module Diag_engine = Ftn_diag.Diag_engine

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains what needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: expected %S in:\n%s" what needle haystack

(* --- locations --- *)

let loc_tests =
  [
    tc "plain printing" (fun () ->
        check Alcotest.string "full" "t.f90:3:7"
          (Loc.to_string (Loc.make ~file:"t.f90" ~line:3 ~col:7 ()));
        check Alcotest.string "line-only" "t.f90:3"
          (Loc.to_string (Loc.line_only ~file:"t.f90" 3));
        check Alcotest.string "unknown" "<unknown>" (Loc.to_string Loc.unknown));
    tc "attribute printing covers spans" (fun () ->
        check Alcotest.string "point" "\"t.f90\":3:7"
          (Fmt.str "%a" Loc.pp (Loc.make ~file:"t.f90" ~line:3 ~col:7 ()));
        check Alcotest.string "span" "\"t.f90\":3:7 to :3:12"
          (Fmt.str "%a" Loc.pp
             (Loc.make ~file:"t.f90" ~line:3 ~col:7 ~end_col:12 ())));
  ]

(* --- caret rendering --- *)

let render_tests =
  [
    tc "caret points at the offending column" (fun () ->
        let src = "program p\nx = 1 + y\nend program" in
        let loc = Loc.make ~file:"t.f90" ~line:2 ~col:9 ~end_col:10 () in
        let rendered =
          Diag.render
            ~source:(Diag.source_of_string src)
            (Diag.error ~loc "y is not declared")
        in
        check_contains "header" "t.f90:2:9: error: y is not declared" rendered;
        check_contains "source line" "x = 1 + y" rendered;
        check_contains "caret" "^" rendered;
        (* caret sits under column 9 (2-space indent) *)
        let caret_line =
          List.find (fun l -> contains ~needle:"^" l)
            (String.split_on_char '\n' rendered)
        in
        check Alcotest.int "caret column" 10 (String.index caret_line '^'));
    tc "span underlines with tildes" (fun () ->
        let src = "call missing_sub(a, b)" in
        let loc = Loc.make ~file:"t.f90" ~line:1 ~col:6 ~end_col:17 () in
        let rendered =
          Diag.render
            ~source:(Diag.source_of_string src)
            (Diag.error ~loc "unknown subroutine")
        in
        check_contains "underline" "^~~~~~~~~~" rendered);
    tc "notes render beneath the diagnostic" (fun () ->
        let d =
          Diag.add_note
            (Diag.error ~loc:(Loc.make ~file:"t.f90" ~line:4 ~col:1 ()) "boom")
            "while running pass 'canonicalize'"
        in
        let rendered = Diag.render d in
        check_contains "note" "note: while running pass 'canonicalize'" rendered);
    tc "unknown locations render header-only" (fun () ->
        let rendered = Diag.render (Diag.error "global failure") in
        check_contains "header" "error: global failure" rendered;
        check Alcotest.bool "no caret" false (contains ~needle:"^" rendered));
  ]

(* --- engine --- *)

let engine_tests =
  [
    tc "accumulates until max-errors then fails" (fun () ->
        let eng = Diag_engine.create ~max_errors:2 () in
        Diag_engine.error eng "first";
        check Alcotest.int "one so far" 1 (Diag_engine.error_count eng);
        (try
           Diag_engine.error eng "second";
           Alcotest.fail "expected Diag_failure at the cap"
         with Diag.Diag_failure ds ->
           check Alcotest.int "both errors reported" 2
             (List.length (List.filter Diag.is_error ds));
           check Alcotest.bool "cap note" true
             (List.exists
                (fun d ->
                  d.Diag.severity = Diag.Note
                  && contains ~needle:"--max-errors" d.Diag.message)
                ds)));
    tc "warnings never trip the cap" (fun () ->
        let eng = Diag_engine.create ~max_errors:1 () in
        Diag_engine.warning eng "w1";
        Diag_engine.warning eng "w2";
        check Alcotest.int "warnings" 2 (Diag_engine.warning_count eng);
        check Alcotest.bool "no errors" false (Diag_engine.has_errors eng);
        Diag_engine.fail_if_errors eng);
    tc "frontend accumulates multiple semantic errors" (fun () ->
        let eng = Diag_engine.create () in
        try
          ignore
            (Ftn_frontend.Frontend.check ~file:"multi.f90" ~engine:eng
               "program p\nx = 1\ny = 2\nend program");
          Alcotest.fail "expected Diag_failure"
        with Diag.Diag_failure ds ->
          check Alcotest.bool "more than one" true (List.length ds > 1);
          let lines =
            List.map (fun d -> d.Diag.loc.Loc.line) ds |> List.sort compare
          in
          check (Alcotest.list Alcotest.int) "both statements" [ 2; 3 ] lines);
    tc "on_emit hook observes every diagnostic" (fun () ->
        let eng = Diag_engine.create () in
        let seen = ref 0 in
        Diag_engine.set_on_emit eng (fun _ -> incr seen);
        Diag_engine.warning eng "w";
        Diag_engine.error eng "e";
        check Alcotest.int "hook calls" 2 !seen);
  ]

(* --- loc round-trip through the printer and parser --- *)

let roundtrip_tests =
  [
    tc "loc attribute survives print/parse" (fun () ->
        let b = Builder.create () in
        let loc = Loc.make ~file:"t.f90" ~line:12 ~col:3 ~end_col:8 () in
        let c = Op.set_loc (Arith.const_i32 b 7) loc in
        let m = Op.module_op [ c ] in
        let text = Printer.to_string m in
        check_contains "printed trailing loc" "loc(\"t.f90\":12:3 to :12:8)"
          text;
        let m' = Ir_parser.parse_module text in
        check Alcotest.string "text-stable" text (Printer.to_string m');
        let c' = List.hd (Op.module_body m') in
        check Alcotest.bool "loc preserved" true (Loc.equal loc (Op.loc c')));
    tc "compiled IR carries source lines end to end" (fun () ->
        let src =
          "program p\nreal :: x\nx = 1.0\nend program"
        in
        let m = Ftn_frontend.Frontend.to_core ~file:"p.f90" src in
        let text = Printer.to_string m in
        check_contains "store located on line 3" "loc(\"p.f90\":3" text;
        let m' = Ir_parser.parse_module text in
        check Alcotest.string "re-parses stably" text (Printer.to_string m'));
    tc "loc does not defeat CSE" (fun () ->
        (* identical constants from different source lines still dedup *)
        let b = Builder.create () in
        let c1 =
          Op.set_loc (Arith.const_i32 b 5)
            (Loc.make ~file:"a.f90" ~line:1 ~col:1 ())
        in
        let c2 =
          Op.set_loc (Arith.const_i32 b 5)
            (Loc.make ~file:"a.f90" ~line:2 ~col:1 ())
        in
        let use =
          Op.make "test.use" ~operands:[ Op.result1 c1; Op.result1 c2 ]
        in
        let m = Op.module_op [ c1; c2; use ] in
        let m' = Ftn_passes.Canonicalize.run m in
        let constants =
          List.filter
            (fun o -> String.equal (Op.name o) "arith.constant")
            (Op.module_body m')
        in
        check Alcotest.int "one constant left" 1 (List.length constants));
  ]

(* --- verifier: kernel_create isolation --- *)

let verifier_tests =
  [
    tc "kernel_create region may use its own operands" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b (Types.memref [ Types.Static 4 ] Types.F32) in
        let body = [ Op.make "test.use" ~operands:[ arg ] ] in
        let kc = Device.kernel_create b ~args:[ arg ] ~body () in
        let f =
          Func_d.func ~sym_name:"k" ~args:[ arg ] ~result_tys:[] [ kc ]
        in
        check (Alcotest.list Alcotest.string) "no diagnostics" []
          (List.map (fun d -> d.Diag.message)
             (Verifier.verify (Op.module_op [ f ]))));
    tc "kernel_create region may not reach other outer values" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b (Types.memref [ Types.Static 4 ] Types.F32) in
        let stray = Builder.op1 b "test.def" Types.F32 in
        let body =
          [ Op.make "test.use" ~operands:[ Op.result1 stray ] ]
        in
        let kc = Device.kernel_create b ~args:[ arg ] ~body () in
        let f =
          Func_d.func ~sym_name:"k" ~args:[ arg ] ~result_tys:[]
            [ stray; kc ]
        in
        match Verifier.verify (Op.module_op [ f ]) with
        | [] -> Alcotest.fail "expected an isolation diagnostic"
        | d :: _ ->
          check_contains "message" "use of undefined value" d.Diag.message);
    tc "verifier diagnostics carry the op loc" (fun () ->
        let b = Builder.create () in
        let loc = Loc.make ~file:"v.f90" ~line:9 ~col:2 () in
        let dangling = Builder.fresh b Types.I32 in
        let bad =
          Op.set_loc (Op.make "test.use" ~operands:[ dangling ]) loc
        in
        match Verifier.verify (Op.module_op [ bad ]) with
        | [ d ] -> check Alcotest.bool "located" true (Loc.equal loc d.Diag.loc)
        | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  ]

let () =
  Alcotest.run "diag"
    [
      ("loc", loc_tests);
      ("render", render_tests);
      ("engine", engine_tests);
      ("roundtrip", roundtrip_tests);
      ("verifier", verifier_tests);
    ]
