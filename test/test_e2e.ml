(* End-to-end tests: full Fortran programs compiled through every stage and
   executed on the simulated FPGA, checked against OCaml references and
   against CPU-mode execution. *)

open Ftn_runtime

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let contains = Astring_like.contains

let max_abs_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) a;
  !m

let e2e_tests =
  [
    tc "saxpy matches the reference exactly" (fun () ->
        let n = 256 in
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n) in
        let x, y = Ftn_linpack.References.saxpy_inputs ~n in
        Ftn_linpack.References.saxpy ~a:2.0 ~x ~y;
        let got = Option.get (Core.Run.device_floats run ~name:"y") in
        check (Alcotest.float 0.0) "bit exact" 0.0 (max_abs_diff got y));
    tc "sgesl matches the reference exactly" (fun () ->
        let n = 48 in
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.sgesl ~n) in
        let a, b, ipvt = Ftn_linpack.References.sgesl_inputs ~n in
        Ftn_linpack.References.sgesl_update ~n ~a ~b ~ipvt;
        let got = Option.get (Core.Run.device_floats run ~name:"b") in
        check (Alcotest.float 0.0) "bit exact" 0.0 (max_abs_diff got b));
    tc "hand-written baselines agree with the compiled flow" (fun () ->
        let n = 128 in
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n) in
        let hand = Ftn_linpack.Hls_baselines.run_saxpy ~n () in
        let got = Option.get (Core.Run.device_floats run ~name:"y") in
        check (Alcotest.float 0.0) "same" 0.0
          (max_abs_diff got hand.Ftn_linpack.Hls_baselines.values);
        let n2 = 32 in
        let run2 = Core.Run.run (Ftn_linpack.Fortran_sources.sgesl ~n:n2) in
        let hand2 = Ftn_linpack.Hls_baselines.run_sgesl ~n:n2 () in
        let got2 = Option.get (Core.Run.device_floats run2 ~name:"b") in
        check (Alcotest.float 0.0) "same sgesl" 0.0
          (max_abs_diff got2 hand2.Ftn_linpack.Hls_baselines.values));
    tc "dot product with reduction matches reference" (fun () ->
        let n = 200 in
        let run =
          Core.Run.run (Ftn_linpack.Fortran_sources.dot_product ~n ~simdlen:4)
        in
        let x, y = Ftn_linpack.References.dot_inputs ~n in
        let expect = Ftn_linpack.References.dot ~x ~y in
        (* result printed; the reduction reorders sums, so allow relative
           rounding slack *)
        let out = Core.Run.output run in
        check Alcotest.bool "has dot" true (contains out "dot");
        let total = Option.get (Core.Run.device_floats run ~name:"total") in
        check Alcotest.bool "close" true
          (Float.abs (total.(0) -. expect) /. Float.abs expect < 1e-4));
    tc "reduction executes round-robin but sums completely" (fun () ->
        (* n smaller than the copy count exercises the identity padding *)
        let run =
          Core.Run.run (Ftn_linpack.Fortran_sources.dot_product ~n:3 ~simdlen:2)
        in
        let x, y = Ftn_linpack.References.dot_inputs ~n:3 in
        let expect = Ftn_linpack.References.dot ~x ~y in
        let total = Option.get (Core.Run.device_floats run ~name:"total") in
        check Alcotest.bool "exact for tiny n" true
          (Float.abs (total.(0) -. expect) < 1e-6));
    tc "nested data regions transfer once (paper Listing 1)" (fun () ->
        let n = 32 in
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.data_regions ~n) in
        let events = Trace.events run.Core.Run.exec.Executor.trace in
        let h2d, d2h =
          List.fold_left
            (fun (i, o) e ->
              match e with
              | Trace.Transfer { direction = Trace.Host_to_device; _ } -> (i + 1, o)
              | Trace.Transfer { direction = Trace.Device_to_host; _ } -> (i, o + 1)
              | _ -> (i, o))
            (0, 0) events
        in
        (* b copied in once; a (map from) never copied in, copied out once
           when the outer data region ends *)
        check Alcotest.int "h2d" 1 h2d;
        check Alcotest.int "d2h" 1 d2h;
        (* and the result is correct: a(i) = 2*b(i) = 2*i *)
        let a = Option.get (Core.Run.device_floats run ~name:"a") in
        check (Alcotest.float 0.0) "a(n)" (2.0 *. float_of_int n) a.(n - 1));
    tc "implicit map inside data region does not re-transfer" (fun () ->
        (* two kernels over the same mapped array inside one data region:
           the second target's implicit map finds the data present *)
        let src =
          "program p\nreal :: a(16)\ninteger :: i\n!$omp target data map(tofrom:a)\n!$omp target parallel do\ndo i = 1, 16\na(i) = 1.0\nend do\n!$omp end target parallel do\n!$omp target parallel do\ndo i = 1, 16\na(i) = a(i) + 1.0\nend do\n!$omp end target parallel do\n!$omp end target data\nend program"
        in
        let run = Core.Run.run src in
        let transfers =
          List.length
            (List.filter
               (function Trace.Transfer _ -> true | _ -> false)
               (Trace.events run.Core.Run.exec.Executor.trace))
        in
        (* one in + one out, despite two kernels *)
        check Alcotest.int "two transfers" 2 transfers;
        check Alcotest.int "two launches" 2
          run.Core.Run.exec.Executor.kernel_launches;
        let a = Option.get (Core.Run.device_floats run ~name:"a") in
        check (Alcotest.float 0.0) "both kernels ran" 2.0 a.(7));
    tc "collapse(2) kernel runs correctly" (fun () ->
        let src =
          "program p\nreal :: a(4, 8)\ninteger :: i, j\n!$omp target parallel do collapse(2)\ndo i = 1, 4\ndo j = 1, 8\na(i, j) = real(i * 10 + j)\nend do\nend do\n!$omp end target parallel do\nprint *, a(2, 3)\nend program"
        in
        let run = Core.Run.run src in
        check Alcotest.bool "a(2,3) = 23" true
          (contains (Core.Run.output run) "23.0"));
    tc "2D arrays use column-major layout end to end" (fun () ->
        let src =
          "program p\nreal :: a(3, 2)\ninteger :: i, j\ndo j = 1, 2\ndo i = 1, 3\na(i, j) = real(i + j * 100)\nend do\nend do\nprint *, a(3, 1), a(1, 2)\nend program"
        in
        let out, _ = Core.Run.run_cpu src in
        check Alcotest.bool "a(3,1)" true (contains out "103.0");
        check Alcotest.bool "a(1,2)" true (contains out "201.0"));
    tc "subroutine offload with dummy arguments" (fun () ->
        let src =
          "subroutine scale(v, n)\ninteger :: n\nreal :: v(n)\ninteger :: i\n!$omp target parallel do\ndo i = 1, n\nv(i) = v(i) * 3.0\nend do\n!$omp end target parallel do\nend subroutine\nprogram p\nreal :: w(8)\ninteger :: i\ndo i = 1, 8\nw(i) = 1.0\nend do\ncall scale(w, 8)\nprint *, w(8)\nend program"
        in
        let run = Core.Run.run src in
        check Alcotest.bool "scaled" true (contains (Core.Run.output run) "3.0"));
    tc "full LINPACK solver (sgefa + sgesl reference)" (fun () ->
        (* sanity for the reference implementations themselves *)
        let n = 24 in
        let a = Array.init (n * n) (fun k ->
            let i = k mod n and j = k / n in
            if i = j then 4.0 else 1.0 /. float_of_int (1 + abs (i - j)))
        in
        let a_orig = Array.copy a in
        let b = Array.init n (fun i -> float_of_int (i + 1)) in
        let b_orig = Array.copy b in
        let ipvt = Array.make n 0 in
        let info = Ftn_linpack.References.sgefa ~n a ipvt in
        check Alcotest.int "nonsingular" 0 info;
        Ftn_linpack.References.sgesl ~n a ipvt b;
        let r = Ftn_linpack.References.residual ~n a_orig b b_orig in
        check Alcotest.bool "small residual" true (r < 1e-3));
    tc "conditional offload: target under an if statement" (fun () ->
        let src which =
          Printf.sprintf
            "program p\nreal :: y(8)\nlogical :: go\ninteger :: i\ngo = %s\ndo i = 1, 8\ny(i) = -1.0\nend do\nif (go) then\n!$omp target parallel do\ndo i = 1, 8\ny(i) = real(i)\nend do\n!$omp end target parallel do\nend if\nprint *, y(8)\nend program"
            which
        in
        let taken = Core.Run.run (src ".true.") in
        check Alcotest.int "launched" 1
          taken.Core.Run.exec.Executor.kernel_launches;
        check Alcotest.bool "computed" true
          (contains (Core.Run.output taken) "8.0");
        let skipped = Core.Run.run (src ".false.") in
        check Alcotest.int "not launched" 0
          skipped.Core.Run.exec.Executor.kernel_launches;
        check Alcotest.bool "untouched" true
          (contains (Core.Run.output skipped) "-1.0"));
    tc "map(alloc:) transfers nothing" (fun () ->
        let src =
          "program p\nreal :: a(8), tmp(8)\ninteger :: i\n!$omp target data map(tofrom:a) map(alloc:tmp)\n!$omp target parallel do\ndo i = 1, 8\ntmp(i) = real(i)\na(i) = tmp(i) * 2.0\nend do\n!$omp end target parallel do\n!$omp end target data\nprint *, a(8)\nend program"
        in
        let run = Core.Run.run src in
        (* a in + a out only: tmp is device-only scratch *)
        check Alcotest.int "bytes" (2 * 8 * 4)
          run.Core.Run.exec.Executor.bytes_transferred;
        check Alcotest.bool "result" true
          (contains (Core.Run.output run) "16.0"));
    tc "two kernels share one bitstream" (fun () ->
        let src =
          "program p\nreal :: a(8)\ninteger :: i\n!$omp target parallel do map(from:a)\ndo i = 1, 8\na(i) = 1.0\nend do\n!$omp end target parallel do\n!$omp target parallel do map(tofrom:a)\ndo i = 1, 8\na(i) = a(i) + 1.0\nend do\n!$omp end target parallel do\nprint *, a(1)\nend program"
        in
        let run = Core.Run.run src in
        check Alcotest.int "two kernels in bitstream" 2
          (List.length run.Core.Run.bitstream.Ftn_hlsim.Bitstream.kernels);
        check Alcotest.bool "chained" true (contains (Core.Run.output run) "2.0"));
    tc "device-side do-while is rejected with a clear error" (fun () ->
        let src =
          "program p\nreal :: y(4)\ninteger :: i, k\n!$omp target map(tofrom:y)\nk = 0\ndo while (k < 4)\nk = k + 1\ny(k) = 1.0\nend do\n!$omp end target\nend program"
        in
        (try
           ignore (Core.Compiler.compile src);
           Alcotest.fail "expected a located diagnostic"
         with Ftn_diag.Diag.Diag_failure (d :: _) ->
           check Alcotest.bool "names the construct" true
             (let m = d.Ftn_diag.Diag.message in
              let needle = "scf.while" in
              let nl = String.length needle and hl = String.length m in
              let rec go i =
                i + nl <= hl && (String.sub m i nl = needle || go (i + 1))
              in
              go 0);
           check Alcotest.bool "located" true
             (Ftn_diag.Loc.is_known d.Ftn_diag.Diag.loc));
        (* but compiling without the llvm stage works, and it executes *)
        let core = Ftn_frontend.Frontend.to_core src in
        let r = Ftn_passes.Pipeline.run_mid_end ~to_llvm:false core in
        check Alcotest.bool "device module exists" true
          (r.Ftn_passes.Pipeline.device_hls <> None));
    tc "per-stage records cover the paper's Figure 2 pipeline" (fun () ->
        let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:16) in
        let names = List.map (fun s -> s.Ftn_ir.Pass.stage_name) art.Core.Compiler.stages in
        List.iter
          (fun expected ->
            check Alcotest.bool (expected ^ " present") true
              (List.exists (fun n -> n = expected) names))
          [ "lower-omp-mapped-data"; "lower-omp-target-region";
            "lower-omp-loops-to-hls"; "lower-hls-to-func-call";
            "convert-to-llvm" ]);
    tc "every intermediate module verifies" (fun () ->
        let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.sgesl ~n:8) in
        Ftn_ir.Verifier.verify_exn art.Core.Compiler.core_module;
        Ftn_ir.Verifier.verify_exn art.Core.Compiler.host;
        Option.iter Ftn_ir.Verifier.verify_exn art.Core.Compiler.device_core;
        Option.iter Ftn_ir.Verifier.verify_exn art.Core.Compiler.device_hls;
        Option.iter Ftn_ir.Verifier.verify_exn art.Core.Compiler.device_llvm);
    tc "printed IR of every stage re-parses" (fun () ->
        let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:8) in
        let roundtrip m =
          let text = Ftn_ir.Printer.to_string m in
          let m' = Ftn_ir.Ir_parser.parse_module text in
          check Alcotest.string "same" text (Ftn_ir.Printer.to_string m')
        in
        roundtrip art.Core.Compiler.fir_module;
        roundtrip art.Core.Compiler.core_module;
        roundtrip art.Core.Compiler.host;
        Option.iter roundtrip art.Core.Compiler.device_hls;
        Option.iter roundtrip art.Core.Compiler.device_llvm);
    tc "simulated measurement harness reports median and std" (fun () ->
        let s = Core.Measure.measure ~runs:10 ~seed:7 1.0e-3 in
        check Alcotest.int "ten runs" 10 (List.length s.Core.Measure.runs);
        check Alcotest.bool "median near truth" true
          (Float.abs (s.Core.Measure.median -. 1.0e-3) < 1.0e-4);
        check Alcotest.bool "std positive" true (s.Core.Measure.std > 0.0);
        (* deterministic: same seed, same numbers *)
        let s2 = Core.Measure.measure ~runs:10 ~seed:7 1.0e-3 in
        check (Alcotest.float 0.0) "deterministic" s.Core.Measure.median
          s2.Core.Measure.median);
    tc "power model produces the paper's ordering" (fun () ->
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n:512) in
        let fpga = Core.Run.fpga_power run in
        let cpu =
          Ftn_hlsim.Power.cpu_power_w Ftn_hlsim.Fpga_spec.u280 ~kernel_time_s:0.1
        in
        check Alcotest.bool "fpga about half of cpu" true
          (fpga < cpu /. 1.7 && fpga > cpu /. 3.0));
  ]


(* --- the ftnc driver's backend selection, end to end --- *)

let cli_capture cmd =
  let out_file = Filename.temp_file "ftnc" ".out" in
  let err_file = Filename.temp_file "ftnc" ".err" in
  let code =
    Sys.command
      (Fmt.str "%s > %s 2> %s" cmd (Filename.quote out_file)
         (Filename.quote err_file))
  in
  let slurp path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, slurp out_file, slurp err_file)

let with_saxpy_file f =
  let src_file = Filename.temp_file "saxpy" ".f90" in
  let oc = open_out src_file in
  output_string oc (Ftn_linpack.Fortran_sources.saxpy ~n:32);
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove src_file) (fun () -> f src_file)

let backend_cli_tests =
  [
    tc "--list-backends prints the registry" (fun () ->
        let code, out, _ = cli_capture "../bin/ftnc.exe --list-backends" in
        check Alcotest.int "exit 0" 0 code;
        check Alcotest.bool "vitis listed" true (contains out "vitis");
        check Alcotest.bool "rv listed" true (contains out "rv");
        check Alcotest.bool "device column" true (contains out "Alveo U280");
        check Alcotest.bool "capability column" true (contains out "dse"));
    tc "unknown --backend errors with a did-you-mean note" (fun () ->
        with_saxpy_file (fun src ->
            let code, _, err =
              cli_capture
                (Fmt.str "../bin/ftnc.exe run %s --backend vitsi"
                   (Filename.quote src))
            in
            check Alcotest.int "exit 1" 1 code;
            check Alcotest.bool "named" true
              (contains err "unknown backend 'vitsi'");
            check Alcotest.bool "did-you-mean" true
              (contains err "did you mean 'vitis'?");
            check Alcotest.bool "no backtrace" false (contains err "Raised at")));
    tc "both backends produce the same program output via the CLI" (fun () ->
        with_saxpy_file (fun src ->
            let run b =
              cli_capture
                (Fmt.str "../bin/ftnc.exe run %s --backend %s"
                   (Filename.quote src) b)
            in
            let vc, vout, _ = run "vitis" in
            let rc, rout, _ = run "rv" in
            check Alcotest.int "vitis exit 0" 0 vc;
            check Alcotest.int "rv exit 0" 0 rc;
            check Alcotest.string "identical output" vout rout));
  ]

let () =
  Alcotest.run "e2e"
    [ ("pipeline", e2e_tests); ("backend-cli", backend_cli_tests) ]
