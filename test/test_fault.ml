(* Tests for the fault-injection framework and the fault-tolerant device
   runtime: plan parsing, injector determinism, the structured error
   taxonomy, retry/backoff accounting, eviction recovery, CPU fallback
   and diagnostics routing — the latter under both interpreter engines. *)

open Ftn_ir
open Ftn_dialects
open Ftn_hlsim
open Ftn_runtime
module Fault = Ftn_fault.Fault
module Injector = Ftn_fault.Injector

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let engines = [ ("tree", `Tree); ("compiled", `Compiled) ]

(* Compiled SAXPY shared by the executor tests (host module + bitstream). *)
let saxpy = lazy (
  let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:32) in
  let bs = Core.Compiler.synthesise art in
  (art.Core.Compiler.host, bs))

let exec ?engine ?faults ?retry ?diag () =
  let host, bitstream = Lazy.force saxpy in
  Executor.run ?engine ?diag ?faults ?retry ~host ~bitstream ()

let plan_of s =
  match Fault.parse_plan s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan %S did not parse: %s" s msg

(* --- plan parsing --- *)

let plan_tests =
  [
    tc "bare kind defaults to first occurrence, transient" (fun () ->
        match (plan_of "transfer").Fault.rules with
        | [ r ] ->
          check Alcotest.bool "kind" true (r.Fault.r_kind = Fault.Transfer_error);
          check Alcotest.bool "trigger" true (r.Fault.r_trigger = Fault.Nth 1);
          check Alcotest.bool "persistence" true
            (r.Fault.r_persistence = Fault.Transient);
          check Alcotest.bool "no kernel" true (r.Fault.r_kernel = None)
        | rs -> Alcotest.failf "expected one rule, got %d" (List.length rs));
    tc "full syntax round-trips through to_string" (fun () ->
        let p = plan_of "timeout@saxpy_hw:nth=2:persistent,alloc:p=0.25" in
        let p' = plan_of (Fault.plan_to_string p) in
        check Alcotest.bool "equal rules" true (p.Fault.rules = p'.Fault.rules));
    tc "every kind parses to its constructor" (fun () ->
        List.iter
          (fun (s, kind) ->
            match (plan_of s).Fault.rules with
            | [ r ] -> check Alcotest.bool s true (r.Fault.r_kind = kind)
            | _ -> Alcotest.fail s)
          [
            ("alloc", Fault.Alloc_failure); ("transfer", Fault.Transfer_error);
            ("launch", Fault.Launch_failure); ("timeout", Fault.Kernel_timeout);
          ]);
    tc "unknown kind is rejected" (fun () ->
        match Fault.parse_plan "dma:nth=1" with
        | Error msg ->
          check Alcotest.bool "names the kind" true
            (Astring_like.contains msg "dma")
        | Ok _ -> Alcotest.fail "expected parse error");
    tc "kernel filter on a non-launch kind is rejected" (fun () ->
        match Fault.parse_plan "alloc@saxpy_hw" with
        | Error msg ->
          check Alcotest.bool "explains" true
            (Astring_like.contains msg "kernel")
        | Ok _ -> Alcotest.fail "expected parse error");
    tc "out-of-range probability is rejected" (fun () ->
        match Fault.parse_plan "transfer:p=1.5" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    tc "empty plan is rejected" (fun () ->
        match Fault.parse_plan "" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    tc "duplicate rule for the same kind is rejected" (fun () ->
        match Fault.parse_plan "launch:nth=1,launch:nth=3" with
        | Error msg ->
          check Alcotest.bool "calls it a duplicate" true
            (Astring_like.contains msg "duplicate")
        | Ok _ -> Alcotest.fail "expected parse error");
    tc "different kinds on the same site still compose" (fun () ->
        (* launch and timeout both arm the launch site but are distinct
           rules; the historic bench plan relies on this. *)
        match Fault.parse_plan "launch:nth=1,timeout:nth=2" with
        | Ok p -> check Alcotest.int "both rules" 2 (List.length p.Fault.rules)
        | Error msg -> Alcotest.failf "rejected: %s" msg);
    tc "same kind scoped to different kernels composes; same kernel is a \
        duplicate" (fun () ->
        (match Fault.parse_plan "launch@saxpy_hw:nth=1,launch@sgesl_hw:nth=1" with
        | Ok p -> check Alcotest.int "both rules" 2 (List.length p.Fault.rules)
        | Error msg -> Alcotest.failf "rejected: %s" msg);
        match Fault.parse_plan "launch@saxpy_hw:nth=1,launch@saxpy_hw:nth=2" with
        | Error msg ->
          check Alcotest.bool "names the kernel" true
            (Astring_like.contains msg "saxpy_hw")
        | Ok _ -> Alcotest.fail "expected parse error");
  ]

(* --- injector --- *)

let injector_tests =
  [
    tc "nth trigger fires exactly on the nth match" (fun () ->
        let inj =
          Injector.create (Fault.plan [ Fault.rule Fault.Transfer_error (Fault.Nth 3) ])
        in
        let fired =
          List.init 5 (fun _ ->
              let tok = Injector.arm inj ~site:Fault.Transfer () in
              Injector.fire tok ~attempt:1 <> None)
        in
        check (Alcotest.list Alcotest.bool) "third only"
          [ false; false; true; false; false ]
          fired);
    tc "transient faults clear on the second attempt" (fun () ->
        let inj =
          Injector.create (Fault.plan [ Fault.rule Fault.Launch_failure (Fault.Nth 1) ])
        in
        let tok = Injector.arm inj ~site:Fault.Launch () in
        check Alcotest.bool "attempt 1 fails" true
          (Injector.fire tok ~attempt:1 <> None);
        check Alcotest.bool "attempt 2 clears" true
          (Injector.fire tok ~attempt:2 = None));
    tc "persistent faults survive attempts until cured" (fun () ->
        let inj =
          Injector.create
            (Fault.plan
               [ Fault.rule ~persistence:Fault.Persistent Fault.Alloc_failure
                   (Fault.Nth 1) ])
        in
        let tok = Injector.arm inj ~site:Fault.Alloc () in
        check Alcotest.bool "attempt 1" true (Injector.fire tok ~attempt:1 <> None);
        check Alcotest.bool "attempt 2" true (Injector.fire tok ~attempt:2 <> None);
        Injector.cure tok;
        check Alcotest.bool "cured" true (Injector.fire tok ~attempt:3 = None));
    tc "kernel filter only matches the named kernel" (fun () ->
        let inj =
          Injector.create
            (Fault.plan
               [ Fault.rule ~kernel:"k1" Fault.Launch_failure (Fault.Nth 1) ])
        in
        let t0 = Injector.arm inj ~site:Fault.Launch ~kernel:"other" () in
        check Alcotest.bool "other kernel clean" true
          (Injector.fire t0 ~attempt:1 = None);
        let t1 = Injector.arm inj ~site:Fault.Launch ~kernel:"k1" () in
        (match Injector.fire t1 ~attempt:1 with
        | Some f -> check (Alcotest.option Alcotest.string) "kernel recorded"
            (Some "k1") f.Fault.kernel
        | None -> Alcotest.fail "expected fault"));
    tc "probability extremes fire always and never" (fun () ->
        let fired_count p =
          let inj =
            Injector.create
              (Fault.plan ~seed:7 [ Fault.rule Fault.Transfer_error (Fault.Probability p) ])
          in
          List.length
            (List.filter
               (fun _ ->
                 let tok = Injector.arm inj ~site:Fault.Transfer () in
                 Injector.fire tok ~attempt:1 <> None)
               (List.init 20 Fun.id))
        in
        check Alcotest.int "p=1 always" 20 (fired_count 1.0);
        check Alcotest.int "p=0 never" 0 (fired_count 0.0));
    tc "same plan and seed replay identically" (fun () ->
        let trace () =
          let inj =
            Injector.create
              (Fault.plan ~seed:42
                 [ Fault.rule Fault.Transfer_error (Fault.Probability 0.4);
                   Fault.rule Fault.Alloc_failure (Fault.Probability 0.3) ])
          in
          List.map
            (fun i ->
              let site = if i mod 2 = 0 then Fault.Transfer else Fault.Alloc in
              let tok = Injector.arm inj ~site () in
              Injector.fire tok ~attempt:1 <> None)
            (List.init 60 Fun.id)
        in
        check (Alcotest.list Alcotest.bool) "deterministic" (trace ()) (trace ()));
    tc "injected counts each failing attempt" (fun () ->
        let inj =
          Injector.create
            (Fault.plan
               [ Fault.rule ~persistence:Fault.Persistent Fault.Launch_failure
                   (Fault.Nth 1) ])
        in
        let tok = Injector.arm inj ~site:Fault.Launch () in
        ignore (Injector.fire tok ~attempt:1);
        ignore (Injector.fire tok ~attempt:2);
        check Alcotest.int "two" 2 (Injector.injected inj));
  ]

(* --- error taxonomy --- *)

let some_fault =
  {
    Fault.kind = Fault.Transfer_error;
    persistence = Fault.Persistent;
    occurrence = 2;
    kernel = None;
    attempt = 4;
  }

let error_tests =
  [
    tc "every constructor has a distinct code and a message" (fun () ->
        let errors =
          [
            Fault.Retries_exhausted { fault = some_fault; attempts = 4 };
            Fault.Transfer_mismatch
              { src_elt = "f32"; dst_elt = "f64"; src_bytes = 32; dst_bytes = 64 };
            Fault.Missing_kernel { kernel = "k"; xclbin = "a.xclbin" };
            Fault.Invalid_host { op = "device.alloc"; reason = "broken" };
          ]
        in
        let codes = List.map Fault.error_code errors in
        check Alcotest.int "codes distinct"
          (List.length codes)
          (List.length (List.sort_uniq compare codes));
        List.iter
          (fun e ->
            check Alcotest.bool "message nonempty" true
              (String.length (Fault.message e) > 0))
          errors);
    tc "messages carry the distinguishing detail" (fun () ->
        check Alcotest.bool "attempts" true
          (Astring_like.contains
             (Fault.message (Fault.Retries_exhausted { fault = some_fault; attempts = 4 }))
             "4 attempts");
        check Alcotest.bool "elt types" true
          (Astring_like.contains
             (Fault.message
                (Fault.Transfer_mismatch
                   { src_elt = "f32"; dst_elt = "f64"; src_bytes = 32; dst_bytes = 64 }))
             "f64");
        check Alcotest.bool "xclbin" true
          (Astring_like.contains
             (Fault.message (Fault.Missing_kernel { kernel = "k"; xclbin = "a.xclbin" }))
             "a.xclbin"));
    tc "exception printer includes the location" (fun () ->
        let loc = Ftn_diag.Loc.make ~file:"t.f90" ~line:9 ~col:1 () in
        let s =
          Printexc.to_string
            (Fault.Error (Fault.Invalid_host { op = "x"; reason = "y" }, loc))
        in
        check Alcotest.bool "file named" true (Astring_like.contains s "t.f90"));
  ]

(* --- executor fault sites, under both engines --- *)

let snapshot (r : Executor.result) = Data_env.snapshot r.Executor.data

let site_tests_for (ename, engine) =
  let clean () = exec ~engine ~diag:(Ftn_diag.Diag_engine.create ()) () in
  let faulty plan =
    exec ~engine ~faults:(plan_of plan) ~diag:(Ftn_diag.Diag_engine.create ()) ()
  in
  [
    tc (ename ^ ": transient transfer fault is transparent") (fun () ->
        let a = clean () and b = faulty "transfer:nth=1" in
        check Alcotest.string "output" a.Executor.output b.Executor.output;
        check Alcotest.string "data env" (snapshot a) (snapshot b);
        check Alcotest.bool "injected" true (b.Executor.faults_injected > 0);
        check Alcotest.bool "retried" true (b.Executor.retries > 0);
        check Alcotest.bool "not degraded" false b.Executor.degraded;
        check Alcotest.bool "costs time" true
          (b.Executor.device_time_s > a.Executor.device_time_s);
        (* the re-issued transfer is charged exactly once *)
        check (Alcotest.float 0.0) "transfer track unchanged"
          a.Executor.transfer_time_s b.Executor.transfer_time_s);
    tc (ename ^ ": transient alloc fault is transparent") (fun () ->
        let a = clean () and b = faulty "alloc:nth=1" in
        check Alcotest.string "output" a.Executor.output b.Executor.output;
        check Alcotest.string "data env" (snapshot a) (snapshot b);
        check Alcotest.bool "injected" true (b.Executor.faults_injected > 0));
    tc (ename ^ ": transient launch fault never double-charges the kernel")
      (fun () ->
        let a = clean () and b = faulty "launch:nth=1" in
        check Alcotest.string "output" a.Executor.output b.Executor.output;
        check Alcotest.int "one launch" a.Executor.kernel_launches
          b.Executor.kernel_launches;
        (* regression: the failed attempt must charge backoff only, so the
           kernel track of the faulted run equals the clean run exactly *)
        check (Alcotest.float 0.0) "kernel track unchanged"
          a.Executor.kernel_time_s b.Executor.kernel_time_s);
    tc (ename ^ ": transient timeout charges the watchdog to overheads")
      (fun () ->
        let a = clean () and b = faulty "timeout:nth=1" in
        check Alcotest.string "output" a.Executor.output b.Executor.output;
        check Alcotest.bool "watchdog charged" true
          (b.Executor.overhead_time_s
          >= a.Executor.overhead_time_s +. Fault.default_retry.Fault.timeout_s);
        check (Alcotest.float 0.0) "kernel track unchanged"
          a.Executor.kernel_time_s b.Executor.kernel_time_s);
    tc (ename ^ ": persistent launch fault degrades to the CPU") (fun () ->
        let a = clean () and b = faulty "launch:nth=1:persistent" in
        check Alcotest.string "output still correct" a.Executor.output
          b.Executor.output;
        check Alcotest.bool "degraded" true b.Executor.degraded;
        check Alcotest.int "one fallback" 1 b.Executor.cpu_fallbacks;
        check Alcotest.bool "fallback time charged" true
          (b.Executor.fallback_time_s > 0.0);
        check (Alcotest.float 0.0) "kernel never ran on device" 0.0
          b.Executor.kernel_time_s);
    tc (ename ^ ": persistent timeout also degrades") (fun () ->
        let a = clean () and b = faulty "timeout:nth=1:persistent" in
        check Alcotest.string "output" a.Executor.output b.Executor.output;
        check Alcotest.bool "degraded" true b.Executor.degraded);
    tc (ename ^ ": persistent transfer fault exhausts retries") (fun () ->
        let diag = Ftn_diag.Diag_engine.create () in
        (try
           ignore (exec ~engine ~faults:(plan_of "transfer:nth=1:persistent") ~diag ());
           Alcotest.fail "expected Retries_exhausted"
         with Fault.Error (Fault.Retries_exhausted { attempts; _ }, _) ->
           check Alcotest.int "attempts" Fault.default_retry.Fault.max_attempts
             attempts);
        (* the escaping error is mirrored into the diagnostics engine *)
        check Alcotest.bool "diagnosed" true (Ftn_diag.Diag_engine.has_errors diag));
    tc (ename ^ ": handler errors carry the faulting op's location") (fun () ->
        let _, bitstream = Lazy.force saxpy in
        let loc = Ftn_diag.Loc.make ~file:"bad.f90" ~line:7 ~col:3 () in
        let bad =
          Op.set_loc (Op.make "device.data_acquire") loc
        in
        let host =
          Op.module_op
            [ Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
                [ bad; Func_d.return () ] ]
        in
        let diag = Ftn_diag.Diag_engine.create () in
        try
          ignore (Executor.run ~engine ~diag ~entry:"f" ~host ~bitstream ());
          Alcotest.fail "expected Invalid_host"
        with Fault.Error (Fault.Invalid_host _, eloc) ->
          check Alcotest.bool "location known" true (Ftn_diag.Loc.is_known eloc);
          check Alcotest.bool "is the op's location" true
            (Ftn_diag.Loc.equal loc eloc));
  ]

(* --- host-API errors, recovery and the leak report --- *)

let api_ctx ?faults ?diag () =
  let spec = Fpga_spec.u280 in
  let bitstream =
    Synth.synthesise ~frontend:Resources.Clang_hls ~spec
      ~xclbin_name:"fault.xclbin"
      (Ftn_linpack.Hls_baselines.saxpy_device ~n:16)
  in
  Executor.create_context ?faults ?diag bitstream

let api_tests =
  [
    tc "transfer size mismatch raises a structured error" (fun () ->
        let ctx = api_ctx () in
        let src = Ftn_interp.Rtval.alloc_buffer Types.F32 [ 8 ] in
        let dst = Ftn_interp.Rtval.alloc_buffer ~memory_space:1 Types.F32 [ 4 ] in
        try
          Executor.api_transfer ctx ~src ~dst;
          Alcotest.fail "expected Transfer_mismatch"
        with
        | Fault.Error (Fault.Transfer_mismatch { src_bytes; dst_bytes; _ }, _) ->
          check Alcotest.int "src bytes" 32 src_bytes;
          check Alcotest.int "dst bytes" 16 dst_bytes);
    tc "transfer element type mismatch raises even at equal byte size"
      (fun () ->
        let ctx = api_ctx () in
        let src = Ftn_interp.Rtval.alloc_buffer Types.F32 [ 8 ] in
        let dst = Ftn_interp.Rtval.alloc_buffer ~memory_space:1 Types.F64 [ 4 ] in
        try
          Executor.api_transfer ctx ~src ~dst;
          Alcotest.fail "expected Transfer_mismatch"
        with Fault.Error (Fault.Transfer_mismatch { src_elt; dst_elt; _ }, _) ->
          check Alcotest.bool "elts differ" true (src_elt <> dst_elt));
    tc "launching an unknown kernel raises Missing_kernel" (fun () ->
        let ctx = api_ctx () in
        try
          Executor.api_launch ctx ~kernel:"ghost_hw" [];
          Alcotest.fail "expected Missing_kernel"
        with Fault.Error (Fault.Missing_kernel { kernel; xclbin }, _) ->
          check Alcotest.string "kernel" "ghost_hw" kernel;
          check Alcotest.string "xclbin" "fault.xclbin" xclbin);
    tc "persistent alloc fault recovers by evicting unpinned buffers"
      (fun () ->
        let diag = Ftn_diag.Diag_engine.create () in
        let ctx = api_ctx ~faults:(plan_of "alloc:nth=2:persistent") ~diag () in
        let _a =
          Executor.api_alloc ctx ~name:"a" ~memory_space:1 ~elt:Types.F32
            ~shape:[ 16 ]
        in
        (* "a" has refcount 0, so the OOM on "b" can evict it and retry *)
        let _b =
          Executor.api_alloc ctx ~name:"b" ~memory_space:1 ~elt:Types.F32
            ~shape:[ 16 ]
        in
        let r = Executor.result_of_context ctx in
        check Alcotest.bool "retried" true (r.Executor.retries > 0);
        check Alcotest.bool "a evicted" true
          (Data_env.lookup r.Executor.data ~name:"a" ~memory_space:1 = None);
        check Alcotest.bool "b allocated" true
          (Data_env.lookup r.Executor.data ~name:"b" ~memory_space:1 <> None);
        check Alcotest.bool "recovery warned" true
          (Ftn_diag.Diag_engine.warning_count diag > 0));
    tc "persistent alloc fault with nothing evictable exhausts retries"
      (fun () ->
        let ctx = api_ctx ~faults:(plan_of "alloc:nth=1:persistent")
            ~diag:(Ftn_diag.Diag_engine.create ()) () in
        try
          ignore
            (Executor.api_alloc ctx ~name:"a" ~memory_space:1 ~elt:Types.F32
               ~shape:[ 16 ]);
          Alcotest.fail "expected Retries_exhausted"
        with Fault.Error (Fault.Retries_exhausted _, _) -> ());
    tc "teardown reports reference-count leaks" (fun () ->
        let _, bitstream = Lazy.force saxpy in
        let host =
          Op.module_op
            [ Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
                [ Device.data_acquire ~name:"x" ~memory_space:1;
                  Func_d.return () ] ]
        in
        let diag = Ftn_diag.Diag_engine.create () in
        let metric0 = Ftn_obs.Metrics.counter_value "data_env.leaked" in
        ignore (Executor.run ~diag ~entry:"f" ~host ~bitstream ());
        check Alcotest.int "metric bumped" (metric0 + 1)
          (Ftn_obs.Metrics.counter_value "data_env.leaked");
        check Alcotest.bool "warned" true
          (List.exists
             (fun (d : Ftn_diag.Diag.t) ->
               Astring_like.contains d.Ftn_diag.Diag.message "teardown")
             (Ftn_diag.Diag_engine.warnings diag)));
    tc "fault metrics and trace events are recorded" (fun () ->
        let injected0 = Ftn_obs.Metrics.counter_value "fault.injected" in
        let b =
          exec ~faults:(plan_of "launch:nth=1:persistent")
            ~diag:(Ftn_diag.Diag_engine.create ()) ()
        in
        check Alcotest.bool "metric" true
          (Ftn_obs.Metrics.counter_value "fault.injected" > injected0);
        let events = Trace.events b.Executor.trace in
        check Alcotest.bool "fault events" true
          (List.exists (function Trace.Fault _ -> true | _ -> false) events);
        check Alcotest.bool "fallback event" true
          (List.exists (function Trace.Fallback _ -> true | _ -> false) events));
  ]

(* --- flight recorder dumps --- *)

let flight_tests =
  [
    tc "persistent launch fault dumps a flight excerpt with the op's loc"
      (fun () ->
        Ftn_obs.Flight.clear ();
        let diag = Ftn_diag.Diag_engine.create () in
        ignore (exec ~faults:(plan_of "launch:nth=1:persistent") ~diag ());
        match
          List.find_opt
            (fun (d : Ftn_diag.Diag.t) ->
              Astring_like.contains d.Ftn_diag.Diag.message "flight recorder")
            (Ftn_diag.Diag_engine.warnings diag)
        with
        | None -> Alcotest.fail "no flight-recorder dump in the warnings"
        | Some d ->
          let msg = d.Ftn_diag.Diag.message in
          check Alcotest.bool "shows the failing launch" true
            (Astring_like.contains msg "device.kernel_launch");
          check Alcotest.bool "shows the injected fault" true
            (Astring_like.contains msg "fault");
          (* the kernel ops carry the omp.target's source location *)
          check Alcotest.bool "entries carry a loc" true
            (Astring_like.contains msg "@ "));
    tc "ring is bounded: dump holds recent events only" (fun () ->
        Ftn_obs.Flight.clear ();
        let cap0 = Ftn_obs.Flight.capacity () in
        Ftn_obs.Flight.set_capacity 8;
        Fun.protect
          ~finally:(fun () -> Ftn_obs.Flight.set_capacity cap0)
          (fun () ->
            ignore
              (exec ~faults:(plan_of "launch:nth=1:persistent")
                 ~diag:(Ftn_diag.Diag_engine.create ()) ());
            check Alcotest.int "bounded" 8 (Ftn_obs.Flight.length ());
            check Alcotest.bool "older events dropped" true
              (Ftn_obs.Flight.dropped () > 0)));
    tc "flight_note is empty when nothing was recorded" (fun () ->
        Ftn_obs.Flight.clear ();
        check Alcotest.string "empty" "" (Fault.flight_note ()));
  ]

let () =
  Alcotest.run "fault"
    [
      ("plan", plan_tests);
      ("injector", injector_tests);
      ("errors", error_tests);
      ("sites-tree", site_tests_for (List.nth engines 0));
      ("sites-compiled", site_tests_for (List.nth engines 1));
      ("api", api_tests);
      ("flight", flight_tests);
    ]
