(* Tests for the Fortran frontend: lexer, OpenMP directive parser, source
   parser, semantic analysis and FIR/core lowering. *)

open Ftn_frontend
open Ftn_ir

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let toks src =
  List.map (fun s -> s.Src_lexer.tok) (Src_lexer.tokenize src)

(* --- lexer --- *)

let lexer_tests =
  [
    tc "keywords and identifiers lowercase" (fun () ->
        match toks "Program FOO" with
        | [ IDENT "program"; IDENT "foo"; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    tc "numbers" (fun () ->
        (match toks "42 3.5 1.0e3 2d0 1." with
        | [ INT 42; REAL (3.5, false); REAL (1000.0, false);
            REAL (2.0, true); REAL (1.0, false); NEWLINE; EOF ] ->
          ()
        | _ -> Alcotest.fail "number tokens");
        match toks "1.e2" with
        | [ REAL (100.0, false); NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "1.e2");
    tc "operators" (fun () ->
        match toks "a ** b /= c <= d .and. .not. e" with
        | [ IDENT "a"; POW; IDENT "b"; NE; IDENT "c"; LE; IDENT "d"; AND;
            NOT; IDENT "e"; NEWLINE; EOF ] ->
          ()
        | _ -> Alcotest.fail "operator tokens");
    tc "dot operators legacy forms" (fun () ->
        match toks "a .eq. b .lt. c" with
        | [ IDENT "a"; EQ; IDENT "b"; LT; IDENT "c"; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "legacy relational tokens");
    tc "comments stripped, strings kept" (fun () ->
        match toks "x = 'a ! not comment' ! real comment" with
        | [ IDENT "x"; ASSIGN; STRING "a ! not comment"; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "comment handling");
    tc "continuation lines join" (fun () ->
        match toks "x = 1 + &\n  2" with
        | [ IDENT "x"; ASSIGN; INT 1; PLUS; INT 2; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "continuation");
    tc "leading ampersand continuation" (fun () ->
        match toks "x = 1 + &\n  & 2" with
        | [ IDENT "x"; ASSIGN; INT 1; PLUS; INT 2; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "leading-& continuation");
    tc "omp sentinel" (fun () ->
        match toks "!$omp target map(to:x)" with
        | [ OMP "target map(to:x)"; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "omp sentinel");
    tc "omp continuation" (fun () ->
        match toks "!$omp target &\n!$omp& map(to:x)" with
        | [ OMP "target map(to:x)"; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "omp continuation");
    tc "blank and comment-only lines vanish" (fun () ->
        match toks "\n! only a comment\n\nx = 1" with
        | [ IDENT "x"; ASSIGN; INT 1; NEWLINE; EOF ] -> ()
        | _ -> Alcotest.fail "blank handling");
    tc "unterminated string raises" (fun () ->
        (try
           ignore (toks "x = 'oops");
           Alcotest.fail "expected error"
         with Src_lexer.Lex_error (_, loc) ->
           check Alcotest.int "line" 1 loc.Ftn_diag.Loc.line));
    tc "line numbers track" (fun () ->
        let spanned = Src_lexer.tokenize "x = 1\ny = 2" in
        let line_of tok =
          List.find_map
            (fun s -> if s.Src_lexer.tok = tok then Some s.Src_lexer.line else None)
            spanned
        in
        check (Alcotest.option Alcotest.int) "x" (Some 1)
          (line_of (Src_lexer.IDENT "x"));
        check (Alcotest.option Alcotest.int) "y" (Some 2)
          (line_of (Src_lexer.IDENT "y")));
  ]

(* --- OpenMP directive parser --- *)

let omp_tests =
  [
    tc "target with map clauses" (fun () ->
        match Omp_parser.parse "target map(to:x, y) map(from: z)" with
        | Omp_parser.Target { clauses; combined_loop = None } -> (
          match clauses with
          | [ Ast.Cl_map (Ast.Map_to, [ "x"; "y" ]);
              Ast.Cl_map (Ast.Map_from, [ "z" ]) ] ->
            ()
          | _ -> Alcotest.fail "clauses")
        | _ -> Alcotest.fail "directive");
    tc "default map type is tofrom" (fun () ->
        match Omp_parser.parse "target data map(a)" with
        | Omp_parser.Target_data [ Ast.Cl_map (Ast.Map_tofrom, [ "a" ]) ] -> ()
        | _ -> Alcotest.fail "default tofrom");
    tc "combined target parallel do simd" (fun () ->
        match Omp_parser.parse "target parallel do simd simdlen(10) map(tofrom:y)" with
        | Omp_parser.Target { clauses; combined_loop = Some { c_simd = true } } ->
          let maps, rest = Omp_parser.split_combined_clauses clauses in
          check Alcotest.int "one map" 1 (List.length maps);
          (match rest with
          | [ Ast.Cl_simdlen 10 ] -> ()
          | _ -> Alcotest.fail "loop clauses")
        | _ -> Alcotest.fail "combined");
    tc "parallel do without simd" (fun () ->
        match Omp_parser.parse "parallel do" with
        | Omp_parser.Parallel_do { simd = false; clauses = [] } -> ()
        | _ -> Alcotest.fail "parallel do");
    tc "reduction clause" (fun () ->
        (match Omp_parser.parse "parallel do reduction(+:sum)" with
        | Omp_parser.Parallel_do
            { clauses = [ Ast.Cl_reduction (Ast.Red_add, [ "sum" ]) ]; _ } ->
          ()
        | _ -> Alcotest.fail "+ reduction");
        match Omp_parser.parse "parallel do reduction(max:m)" with
        | Omp_parser.Parallel_do
            { clauses = [ Ast.Cl_reduction (Ast.Red_max, [ "m" ]) ]; _ } ->
          ()
        | _ -> Alcotest.fail "max reduction");
    tc "collapse clause" (fun () ->
        match Omp_parser.parse "parallel do collapse(2)" with
        | Omp_parser.Parallel_do { clauses = [ Ast.Cl_collapse 2 ]; _ } -> ()
        | _ -> Alcotest.fail "collapse");
    tc "enter and exit data" (fun () ->
        (match Omp_parser.parse "target enter data map(to:a)" with
        | Omp_parser.Target_enter_data _ -> ()
        | _ -> Alcotest.fail "enter");
        match Omp_parser.parse "target exit data map(from:a)" with
        | Omp_parser.Target_exit_data _ -> ()
        | _ -> Alcotest.fail "exit");
    tc "target update" (fun () ->
        match Omp_parser.parse "target update from(a)" with
        | Omp_parser.Target_update [ Ast.Cl_from [ "a" ] ] -> ()
        | _ -> Alcotest.fail "update");
    tc "end directives" (fun () ->
        (match Omp_parser.parse "end target parallel do simd" with
        | Omp_parser.End_directive "target parallel do simd" -> ()
        | _ -> Alcotest.fail "end combined");
        match Omp_parser.parse "end target data" with
        | Omp_parser.End_directive "target data" -> ()
        | _ -> Alcotest.fail "end data");
    tc "unknown clause rejected" (fun () ->
        try
          ignore (Omp_parser.parse "target nonsense(3)");
          Alcotest.fail "expected error"
        with Omp_parser.Omp_error _ -> ());
    tc "unsupported directive rejected" (fun () ->
        try
          ignore (Omp_parser.parse "teams distribute");
          Alcotest.fail "expected error"
        with Omp_parser.Omp_error _ -> ());
  ]

(* --- source parser --- *)

let parse1 src =
  match Src_parser.parse src with
  | [ u ] -> u
  | _ -> Alcotest.fail "expected one program unit"

let parser_tests =
  [
    tc "program with declarations" (fun () ->
        let u = parse1 "program p\ninteger :: i\nreal :: x(10)\nend program p" in
        check Alcotest.string "name" "p" u.Ast.u_name;
        check Alcotest.int "decls" 2 (List.length u.Ast.u_decls);
        let x = List.nth u.Ast.u_decls 1 in
        check Alcotest.int "dims" 1 (List.length x.Ast.d_dims));
    tc "subroutine with params and intents" (fun () ->
        let u =
          parse1
            "subroutine s(a, n)\ninteger, intent(in) :: n\nreal, intent(inout) :: a(n)\nend subroutine s"
        in
        check Alcotest.bool "kind" true (u.Ast.u_kind = Ast.Subroutine);
        check (Alcotest.list Alcotest.string) "params" [ "a"; "n" ] u.Ast.u_params;
        let a = List.nth u.Ast.u_decls 1 in
        check Alcotest.bool "intent" true (a.Ast.d_intent = Ast.Intent_inout));
    tc "function unit" (fun () ->
        let u = parse1 "real function f(x)\nreal :: x, f\nf = x * 2.0\nend function f" in
        check Alcotest.bool "kind" true (u.Ast.u_kind = Ast.Function Ast.Ty_real));
    tc "parameter declaration" (fun () ->
        let u = parse1 "program p\ninteger, parameter :: n = 4 * 25\nend program" in
        match (List.hd u.Ast.u_decls).Ast.d_parameter with
        | Some (Ast.Binop (Ast.Mul, Ast.Int_lit 4, Ast.Int_lit 25)) -> ()
        | _ -> Alcotest.fail "parameter expr");
    tc "dimension attribute" (fun () ->
        let u = parse1 "program p\nreal, dimension(8) :: a, b\nend program" in
        check Alcotest.int "two arrays" 2 (List.length u.Ast.u_decls);
        List.iter
          (fun d -> check Alcotest.int "rank" 1 (List.length d.Ast.d_dims))
          u.Ast.u_decls);
    tc "double precision" (fun () ->
        let u = parse1 "program p\ndouble precision :: d\nend program" in
        check Alcotest.bool "double" true
          ((List.hd u.Ast.u_decls).Ast.d_type = Ast.Ty_double));
    tc "do loop with step" (fun () ->
        let u =
          parse1 "program p\ninteger :: i\ndo i = 1, 10, 2\nend do\nend program"
        in
        match u.Ast.u_body with
        | [ { Ast.s_kind = Ast.Do { do_step = Some (Ast.Int_lit 2); _ }; _ } ] -> ()
        | _ -> Alcotest.fail "do step");
    tc "if elseif else chain" (fun () ->
        let u =
          parse1
            "program p\ninteger :: i\ni = 0\nif (i > 0) then\ni = 1\nelse if (i < 0) then\ni = 2\nelse\ni = 3\nend if\nend program"
        in
        match List.nth u.Ast.u_body 1 with
        | { Ast.s_kind = Ast.If (arms, else_body); _ } ->
          check Alcotest.int "arms" 2 (List.length arms);
          check Alcotest.int "else" 1 (List.length else_body)
        | _ -> Alcotest.fail "if chain");
    tc "one-line if" (fun () ->
        let u =
          parse1 "program p\ninteger :: i\ni = 0\nif (i > 0) i = 1\nend program"
        in
        match List.nth u.Ast.u_body 1 with
        | { Ast.s_kind = Ast.If ([ (_, [ _ ]) ], []); _ } -> ()
        | _ -> Alcotest.fail "one-line if");
    tc "operator precedence" (fun () ->
        let u = parse1 "program p\nreal :: x\nx = 1.0 + 2.0 * 3.0 ** 2\nend program" in
        match (List.hd u.Ast.u_body).Ast.s_kind with
        | Ast.Assign
            (_, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, Ast.Binop (Ast.Pow, _, _))))
          ->
          ()
        | _ -> Alcotest.fail "precedence");
    tc "unary minus binds below power" (fun () ->
        let u = parse1 "program p\nreal :: x\nx = -2.0 ** 2\nend program" in
        match (List.hd u.Ast.u_body).Ast.s_kind with
        | Ast.Assign (_, Ast.Unop (Ast.Neg, Ast.Binop (Ast.Pow, _, _))) -> ()
        | _ -> Alcotest.fail "neg-pow");
    tc "call statement" (fun () ->
        let u = parse1 "program p\ncall sub(1, 2)\nend program" in
        match (List.hd u.Ast.u_body).Ast.s_kind with
        | Ast.Call ("sub", [ _; _ ]) -> ()
        | _ -> Alcotest.fail "call");
    tc "print statement with strings" (fun () ->
        let u = parse1 "program p\nprint *, 'hi', 42\nend program" in
        match (List.hd u.Ast.u_body).Ast.s_kind with
        | Ast.Print [ Ast.Intrinsic ("__str", _); Ast.Int_lit 42 ] -> ()
        | _ -> Alcotest.fail "print");
    tc "target region pairs with end directive" (fun () ->
        let u =
          parse1
            "program p\nreal :: a(4)\ninteger :: i\n!$omp target map(tofrom:a)\ndo i = 1, 4\na(i) = 0.0\nend do\n!$omp end target\nend program"
        in
        match List.hd u.Ast.u_body with
        | { Ast.s_kind = Ast.Omp_target (_, [ { Ast.s_kind = Ast.Do _; _ } ]); _ } -> ()
        | _ -> Alcotest.fail "target region");
    tc "missing end target is an error" (fun () ->
        try
          ignore
            (Src_parser.parse "program p\n!$omp target\nend program");
          Alcotest.fail "expected error"
        with Src_parser.Parse_error _ -> ());
    tc "combined construct wraps loop" (fun () ->
        let u =
          parse1
            "program p\nreal :: y(4)\ninteger :: i\n!$omp target parallel do simd simdlen(4)\ndo i = 1, 4\ny(i) = 1.0\nend do\n!$omp end target parallel do simd\nend program"
        in
        match List.hd u.Ast.u_body with
        | { Ast.s_kind =
              Ast.Omp_target
                (_, [ { Ast.s_kind = Ast.Omp_parallel_do pd; _ } ]); _ } ->
          check Alcotest.bool "simd" true pd.Ast.pd_simd
        | _ -> Alcotest.fail "combined");
    tc "multiple program units" (fun () ->
        let units =
          Src_parser.parse
            "subroutine a\nend subroutine\nprogram main\ncall a\nend program"
        in
        check Alcotest.int "two units" 2 (List.length units));
    tc "unknown statement errors with line number" (fun () ->
        try
          ignore (Src_parser.parse "program p\n42\nend program");
          Alcotest.fail "expected error"
        with Src_parser.Parse_error (_, loc) ->
          check Alcotest.int "line" 2 loc.Ftn_diag.Loc.line);
  ]

(* --- sema --- *)

let check_src src = Sema.check (Src_parser.parse src)

let sema_err src =
  try
    ignore (check_src src);
    Alcotest.fail "expected semantic error"
  with Sema.Sema_error _ -> ()

let sema_tests =
  [
    tc "undeclared variable" (fun () ->
        sema_err "program p\nx = 1.0\nend program");
    tc "array rank mismatch" (fun () ->
        sema_err "program p\nreal :: a(4, 4)\na(1) = 0.0\nend program");
    tc "non-integer subscript" (fun () ->
        sema_err "program p\nreal :: a(4)\na(1.5) = 0.0\nend program");
    tc "assignment to parameter" (fun () ->
        sema_err "program p\ninteger, parameter :: n = 3\nn = 4\nend program");
    tc "do variable must be integer scalar" (fun () ->
        sema_err "program p\nreal :: x\ndo x = 1, 3\nend do\nend program");
    tc "logical condition required" (fun () ->
        sema_err "program p\ninteger :: i\nif (i + 1) then\nend if\nend program");
    tc "arith on logicals rejected" (fun () ->
        sema_err "program p\nlogical :: l\ninteger :: i\ni = l + 1\nend program");
    tc "duplicate declaration" (fun () ->
        sema_err "program p\ninteger :: i\nreal :: i\nend program");
    tc "unknown function" (fun () ->
        sema_err "program p\nreal :: x\nx = mystery(1.0)\nend program");
    tc "intrinsics resolve" (fun () ->
        match check_src "program p\nreal :: x\nx = sqrt(abs(-2.0))\nend program" with
        | [ info ] -> (
          match (List.hd info.Sema.ui_unit.Ast.u_body).Ast.s_kind with
          | Ast.Assign (_, Ast.Intrinsic ("sqrt", [ Ast.Intrinsic ("abs", _) ])) -> ()
          | _ -> Alcotest.fail "intrinsic resolution")
        | _ -> Alcotest.fail "unit count");
    tc "array reference beats intrinsic namespace" (fun () ->
        (* a variable named max used as an array *)
        match
          check_src "program p\nreal :: max(3)\nreal :: x\nx = max(1)\nend program"
        with
        | [ info ] -> (
          match (List.nth info.Sema.ui_unit.Ast.u_body 0).Ast.s_kind with
          | Ast.Assign (_, Ast.Index ("max", _)) -> ()
          | _ -> Alcotest.fail "array wins")
        | _ -> Alcotest.fail "unit count");
    tc "parameter constants fold into dims" (fun () ->
        match
          check_src "program p\ninteger, parameter :: n = 2 + 2\nreal :: a(n)\nend program"
        with
        | [ info ] -> (
          match (Sema.Env.find "a" info.Sema.ui_symbols).Sema.sym_dims with
          | [ Sema.Dim_const 4 ] -> ()
          | _ -> Alcotest.fail "folded dim")
        | _ -> Alcotest.fail "unit count");
    tc "dummy extent stays dynamic" (fun () ->
        match
          check_src
            "subroutine s(a, n)\ninteger :: n\nreal :: a(n)\nend subroutine"
        with
        | [ info ] -> (
          match (Sema.Env.find "a" info.Sema.ui_symbols).Sema.sym_dims with
          | [ Sema.Dim_expr _ ] -> ()
          | _ -> Alcotest.fail "dynamic dim")
        | _ -> Alcotest.fail "unit count");
    tc "omp clause vars must exist" (fun () ->
        sema_err
          "program p\nreal :: a(4)\ninteger :: i\n!$omp target parallel do map(to:zz)\ndo i = 1, 4\na(i) = 0.0\nend do\n!$omp end target parallel do\nend program");
  ]

(* --- lowering --- *)

let lowering_tests =
  [
    tc "fir module structure" (fun () ->
        let m = Frontend.to_fir "program p\nreal :: x\nx = 1.0\nend program" in
        Alcotest.(check bool) "is module" true (Op.is_module m);
        Alcotest.(check int) "one function" 1
          (Op.count (fun o -> Op.name o = "func.func") m);
        Alcotest.(check bool) "has alloca" true
          (Op.exists (fun o -> Op.name o = "fir.alloca") m));
    tc "core module verifies" (fun () ->
        let m =
          Frontend.to_core_verified
            "program p\nreal :: a(8)\ninteger :: i\ndo i = 1, 8\na(i) = real(i)\nend do\nend program"
        in
        Alcotest.(check bool) "no fir left" false
          (Op.exists (fun o -> Op.dialect o = "fir") m);
        Alcotest.(check bool) "has scf.for" true
          (Op.exists (fun o -> Op.name o = "scf.for") m));
    tc "inclusive bounds become exclusive" (fun () ->
        let m =
          Frontend.to_core
            "program p\ninteger :: i, s\ns = 0\ndo i = 2, 5\ns = s + i\nend do\nend program"
        in
        (* loop must run 4 times: 2,3,4,5 *)
        let fors = Op.collect (fun o -> Op.name o = "scf.for") m in
        Alcotest.(check int) "one loop" 1 (List.length fors));
    tc "explicit and implicit maps" (fun () ->
        let m =
          Frontend.to_core
            "program p\nreal :: x(4), y(4)\nreal :: a\ninteger :: i\na = 2.0\n!$omp target parallel do map(to:x) map(tofrom:y)\ndo i = 1, 4\ny(i) = y(i) + a * x(i)\nend do\n!$omp end target parallel do\nend program"
        in
        let maps = Op.collect (fun o -> Op.name o = "omp.map_info") m in
        Alcotest.(check int) "three maps" 3 (List.length maps);
        let implicit =
          List.filter (fun o -> Op.bool_attr o "implicit" = Some true) maps
        in
        Alcotest.(check int) "one implicit" 1 (List.length implicit);
        Alcotest.(check (option string)) "implicit is a" (Some "a")
          (Op.string_attr (List.hd implicit) "var_name"));
    tc "loop variable is private, not mapped" (fun () ->
        let m =
          Frontend.to_core
            "program p\nreal :: y(4)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 4\ny(i) = 1.0\nend do\n!$omp end target parallel do\nend program"
        in
        let maps = Op.collect (fun o -> Op.name o = "omp.map_info") m in
        Alcotest.(check bool) "i not mapped" false
          (List.exists (fun o -> Op.string_attr o "var_name" = Some "i") maps));
    tc "scalars map as to, arrays as tofrom" (fun () ->
        let m =
          Frontend.to_core
            "program p\nreal :: y(4)\nreal :: c\ninteger :: i\nc = 3.0\n!$omp target parallel do\ndo i = 1, 4\ny(i) = c\nend do\n!$omp end target parallel do\nend program"
        in
        let maps = Op.collect (fun o -> Op.name o = "omp.map_info") m in
        let find name =
          List.find (fun o -> Op.string_attr o "var_name" = Some name) maps
        in
        Alcotest.(check (option string)) "c to" (Some "to")
          (Op.string_attr (find "c") "map_type");
        Alcotest.(check (option string)) "y tofrom" (Some "tofrom")
          (Op.string_attr (find "y") "map_type"));
    tc "private keeps the variable off the device" (fun () ->
        let m =
          Frontend.to_fir
            "program p\nreal :: y(8)\nreal :: t\ninteger :: i\nt = -1.0\n!$omp target parallel do private(t)\ndo i = 1, 8\nt = real(i)\ny(i) = t\nend do\n!$omp end target parallel do\nprint *, t\nend program"
        in
        let maps = Op.collect (fun o -> Op.name o = "omp.map_info") m in
        Alcotest.(check bool) "t not mapped" false
          (List.exists (fun o -> Op.string_attr o "var_name" = Some "t") maps);
        (* and the host copy survives the kernel *)
        let out, _ = Ftn_runtime.Executor.run_cpu (Frontend.to_core
          "program p\nreal :: y(8)\nreal :: t\ninteger :: i\nt = -1.0\n!$omp target parallel do private(t)\ndo i = 1, 8\nt = real(i)\ny(i) = t\nend do\n!$omp end target parallel do\nprint *, y(8)\nend program") in
        Alcotest.(check bool) "kernel used private" true
          (Astring_like.contains out "8.0"));
    tc "firstprivate maps to, never back" (fun () ->
        let m =
          Frontend.to_fir
            "program p\nreal :: y(8)\nreal :: c\ninteger :: i\nc = 3.0\n!$omp target parallel do firstprivate(c)\ndo i = 1, 8\nc = c + 1.0\ny(i) = c\nend do\n!$omp end target parallel do\nend program"
        in
        let maps = Op.collect (fun o -> Op.name o = "omp.map_info") m in
        let c_map =
          List.find (fun o -> Op.string_attr o "var_name" = Some "c") maps
        in
        Alcotest.(check (option string)) "to despite write" (Some "to")
          (Op.string_attr c_map "map_type"));
    tc "reduction clause carried into IR" (fun () ->
        let m =
          Frontend.to_core
            "program p\nreal :: x(4)\nreal :: s\ninteger :: i\ns = 0.0\n!$omp target parallel do reduction(+:s)\ndo i = 1, 4\ns = s + x(i)\nend do\n!$omp end target parallel do\nend program"
        in
        let pd =
          List.hd (Op.collect (fun o -> Op.name o = "omp.parallel_do") m)
        in
        match Op.find_attr pd "reductions" with
        | Some (Attr.Array [ Attr.String "add" ]) -> ()
        | _ -> Alcotest.fail "reduction attr");
    tc "column-major subscripts reverse" (fun () ->
        (* a(i, j) with shape (2, 3) becomes memref<3x2xf32>[j-1, i-1] *)
        let m =
          Frontend.to_core
            "program p\nreal :: a(2, 3)\na(1, 2) = 5.0\nend program"
        in
        let allocas = Op.collect (fun o -> Op.name o = "memref.alloca") m in
        let shapes =
          List.filter_map
            (fun o ->
              match Value.ty (Op.result1 o) with
              | Types.Memref { shape = [ Types.Static x; Types.Static y ]; _ } ->
                Some (x, y)
              | _ -> None)
            allocas
        in
        Alcotest.(check bool) "reversed shape" true (List.mem (3, 2) shapes));
    tc "intrinsic lowering" (fun () ->
        let m =
          Frontend.to_core
            "program p\nreal :: x\nx = sqrt(2.0) + max(1.0, 2.0)\nend program"
        in
        Alcotest.(check bool) "sqrt" true
          (Op.exists (fun o -> Op.name o = "math.sqrt") m);
        Alcotest.(check bool) "max" true
          (Op.exists (fun o -> Op.name o = "arith.maximumf") m));
    tc "x**2 expands to multiply" (fun () ->
        let m =
          Frontend.to_core "program p\nreal :: x\nx = 2.0\nx = x ** 2\nend program"
        in
        Alcotest.(check bool) "no powf" false
          (Op.exists (fun o -> Op.name o = "math.powf") m);
        Alcotest.(check bool) "mulf" true
          (Op.exists (fun o -> Op.name o = "arith.mulf") m));
    tc "print lowers to runtime calls" (fun () ->
        let m = Frontend.to_core "program p\nprint *, 'x', 1\nend program" in
        let calls = Op.collect (fun o -> Op.name o = "func.call") m in
        let callees = List.filter_map (fun o -> Op.symbol_attr o "callee") calls in
        Alcotest.(check bool) "str" true (List.mem "ftn_print_str" callees);
        Alcotest.(check bool) "i32" true (List.mem "ftn_print_i32" callees);
        Alcotest.(check bool) "newline" true
          (List.mem "ftn_print_newline" callees));
    tc "frontend errors are located diagnostics" (fun () ->
        (try
           ignore (Frontend.to_core "program p\nx = 1\nend program");
           Alcotest.fail "expected Diag_failure"
         with Ftn_diag.Diag.Diag_failure [ d ] ->
           check Alcotest.int "line" 2 d.Ftn_diag.Diag.loc.Ftn_diag.Loc.line);
        try
          ignore (Frontend.to_core "program p\nend");
          ()
        with Ftn_diag.Diag.Diag_failure _ -> ());
    tc "user-defined function calls resolve and execute" (fun () ->
        let src =
          "real function square(v)\nreal :: v, square\nsquare = v * v\nend function\nprogram p\nreal :: t\nt = square(3.0) + square(2.0)\nprint *, t\nend program"
        in
        let m = Frontend.to_core_verified src in
        Alcotest.(check bool) "calls present" true
          (Op.exists
             (fun o ->
               Op.name o = "func.call" && Op.symbol_attr o "callee" = Some "square")
             m);
        let out, _ = Ftn_runtime.Executor.run_cpu m in
        Alcotest.(check bool) "13" true (Astring_like.contains out "13.0"));
    tc "wrong function arity is a semantic error" (fun () ->
        sema_err
          "real function f(v)\nreal :: v, f\nf = v\nend function\nprogram p\nreal :: t\nt = f(1.0, 2.0)\nend program");
    tc "do while parses and runs" (fun () ->
        let src =
          "program p\ninteger :: k\nk = 0\ndo while (k < 7)\nk = k + 2\nend do\nprint *, k\nend program"
        in
        let m = Frontend.to_core_verified src in
        Alcotest.(check bool) "scf.while" true
          (Op.exists (fun o -> Op.name o = "scf.while") m);
        let out, _ = Ftn_runtime.Executor.run_cpu m in
        Alcotest.(check bool) "8" true (Astring_like.contains out "8"));
    tc "write(*,*) behaves like print" (fun () ->
        let p_out, _ =
          Ftn_runtime.Executor.run_cpu
            (Frontend.to_core "program p\nprint *, 'x', 1\nend program")
        in
        let w_out, _ =
          Ftn_runtime.Executor.run_cpu
            (Frontend.to_core "program p\nwrite(*,*) 'x', 1\nend program")
        in
        Alcotest.(check string) "same" p_out w_out);
    tc "subroutine arrays pass by reference" (fun () ->
        let m =
          Frontend.to_core_verified
            "subroutine fill(a, n)\ninteger :: n\nreal :: a(n)\ninteger :: i\ndo i = 1, n\na(i) = 1.0\nend do\nend subroutine\nprogram p\nreal :: v(4)\ncall fill(v, 4)\nend program"
        in
        Alcotest.(check int) "two functions" 2
          (Op.count (fun o -> Op.name o = "func.func") m);
        Alcotest.(check bool) "call present" true
          (Op.exists (fun o ->
               Op.name o = "func.call"
               && Op.symbol_attr o "callee" = Some "fill")
             m));
  ]

(* --- driver behaviour on bad source --- *)

let driver_tests =
  [
    tc "ftnc reports located caret diagnostics and exits 1" (fun () ->
        let src_file = Filename.temp_file "bad" ".f90" in
        let err_file = Filename.temp_file "bad" ".err" in
        let oc = open_out src_file in
        output_string oc "program p\nx = 1\ny = 2\nend program\n";
        close_out oc;
        let code =
          Sys.command
            (Fmt.str "../bin/ftnc.exe compile %s 2> %s"
               (Filename.quote src_file) (Filename.quote err_file))
        in
        let ic = open_in_bin err_file in
        let err = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Sys.remove src_file;
        Sys.remove err_file;
        Alcotest.(check int) "exit code" 1 code;
        let contains needle =
          let nl = String.length needle and hl = String.length err in
          let rec go i =
            i + nl <= hl && (String.sub err i nl = needle || go (i + 1))
          in
          go 0
        in
        (* both semantic errors, each located with file:line:col, with the
           offending source line and a caret underneath *)
        Alcotest.(check bool) "first error located" true
          (contains (Filename.basename src_file ^ "") && contains ".f90:2:");
        Alcotest.(check bool) "second error reported" true (contains ".f90:3:");
        Alcotest.(check bool) "severity tag" true (contains "error:");
        Alcotest.(check bool) "source line echoed" true (contains "x = 1");
        Alcotest.(check bool) "caret" true (contains "^");
        Alcotest.(check bool) "error count summary" true
          (contains "2 errors generated.");
        Alcotest.(check bool) "no backtrace" false (contains "Raised at"));
  ]

let () =
  Alcotest.run "frontend"
    [
      ("lexer", lexer_tests);
      ("omp-parser", omp_tests);
      ("parser", parser_tests);
      ("sema", sema_tests);
      ("lowering", lowering_tests);
      ("driver", driver_tests);
    ]
