(* Tests for the HLS/U280 simulation: scheduling rules, resource
   estimation (including the paper's Table 3/4 values), the timing and
   power models, and the synthesis driver. *)

open Ftn_ir
open Ftn_hlsim

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let spec = Fpga_spec.u280

let kernel_of_module m =
  List.find
    (fun o -> Ftn_dialects.Func_d.is_func o && Ftn_dialects.Func_d.has_body o)
    (Op.module_body m)

let saxpy_schedule ?(n = 100) () =
  Schedule.analyse_kernel spec
    (kernel_of_module (Ftn_linpack.Hls_baselines.saxpy_device ~n))

let sgesl_schedule () =
  Schedule.analyse_kernel spec
    (kernel_of_module (Ftn_linpack.Hls_baselines.sgesl_device ~n:64))

let the_loop ks =
  match Schedule.flatten_loops ks.Schedule.loops with
  | [ l ] -> l
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let schedule_tests =
  [
    tc "saxpy kernel: ports, unroll, trip" (fun () ->
        let ks = saxpy_schedule () in
        check (Alcotest.list Alcotest.string) "bundles" [ "gmem0"; "gmem1" ]
          ks.Schedule.m_axi_bundles;
        check Alcotest.int "axilite" 1 ks.Schedule.s_axilite_args;
        let l = the_loop ks in
        check Alcotest.bool "pipelined" true l.Schedule.pipelined;
        check Alcotest.int "unroll" 10 l.Schedule.unroll;
        check (Alcotest.option Alcotest.int) "trip" (Some 100) l.Schedule.static_trip;
        check Alcotest.int "macs" 1 l.Schedule.macs);
    tc "unrolled RMW loop is port bound (32 cycles/element)" (fun () ->
        let l = the_loop (saxpy_schedule ()) in
        (* y port: 1 read + 1 write per element, x10 unroll, x16 share /10 *)
        check (Alcotest.float 0.01) "cycles" 32.0 l.Schedule.cycles_per_iteration;
        check Alcotest.bool "rmw detected" true l.Schedule.rmw_port);
    tc "non-unrolled RMW loop is chain bound" (fun () ->
        let l = the_loop (sgesl_schedule ()) in
        check Alcotest.int "unroll 1" 1 l.Schedule.unroll;
        check (Alcotest.float 0.01) "cycles"
          (float_of_int spec.Fpga_spec.rmw_chain_cycles)
          l.Schedule.cycles_per_iteration);
    tc "read-only loops are cheaper than RMW" (fun () ->
        (* dot-product style kernel from the Fortran flow: reads two arrays,
           writes none of them *)
        let art =
          Core.Compiler.compile (Ftn_linpack.Fortran_sources.dot_product ~n:64 ~simdlen:1)
        in
        match art.Core.Compiler.device_hls with
        | Some d ->
          let ks = Schedule.analyse_kernel spec (kernel_of_module d) in
          let l = List.hd (Schedule.flatten_loops ks.Schedule.loops) in
          check Alcotest.bool "cheaper than chain" true
            (l.Schedule.cycles_per_iteration
            < float_of_int spec.Fpga_spec.rmw_chain_cycles)
        | None -> Alcotest.fail "no device module");
    tc "dynamic trip count is unknown statically" (fun () ->
        let l = the_loop (sgesl_schedule ()) in
        check (Alcotest.option Alcotest.int) "trip" None l.Schedule.static_trip);
  ]

let resources_tests =
  [
    tc "Table 3: SAXPY resources match the paper on both flows" (fun () ->
        let ks = saxpy_schedule ~n:100 () in
        let ftn = Resources.estimate ~frontend:Resources.Mlir_flow spec ks in
        let hand = Resources.estimate ~frontend:Resources.Clang_hls spec ks in
        check (Alcotest.float 0.005) "ftn LUT" 8.29 ftn.Resources.lut_pct;
        check (Alcotest.float 0.005) "hand LUT" 8.29 hand.Resources.lut_pct;
        check (Alcotest.float 0.005) "BRAM" 10.07 ftn.Resources.bram_pct;
        check (Alcotest.float 0.005) "ftn DSP" 0.10 ftn.Resources.dsp_pct;
        check (Alcotest.float 0.005) "hand DSP" 0.10 hand.Resources.dsp_pct);
    tc "Table 4: SGESL DSP divergence from MAC fusion" (fun () ->
        (* the Fortran-flow kernel comes from the compiled benchmark; the
           hand-written kernel from the baseline construction *)
        let art =
          Core.Compiler.compile (Ftn_linpack.Fortran_sources.sgesl ~n:64)
        in
        let ftn_ks =
          match art.Core.Compiler.device_hls with
          | Some d -> Schedule.analyse_kernel spec (kernel_of_module d)
          | None -> Alcotest.fail "no device module"
        in
        let ks = sgesl_schedule () in
        let ftn = Resources.estimate ~frontend:Resources.Mlir_flow spec ftn_ks in
        let hand = Resources.estimate ~frontend:Resources.Clang_hls spec ks in
        check (Alcotest.float 0.005) "ftn LUT" 8.24 ftn.Resources.lut_pct;
        check (Alcotest.float 0.005) "hand LUT" 8.22 hand.Resources.lut_pct;
        check (Alcotest.float 0.005) "ftn DSP" 0.10 ftn.Resources.dsp_pct;
        check (Alcotest.float 0.005) "hand DSP" 0.23 hand.Resources.dsp_pct;
        check Alcotest.int "fused macs" 1 hand.Resources.fused_macs;
        check Alcotest.int "ftn lut macs" 1 ftn.Resources.lut_macs);
    tc "unrolling defeats MAC fusion even for Clang" (fun () ->
        let ks = saxpy_schedule () in
        let hand = Resources.estimate ~frontend:Resources.Clang_hls spec ks in
        check Alcotest.int "no fused macs" 0 hand.Resources.fused_macs);
    tc "local buffers consume BRAM" (fun () ->
        let art =
          Core.Compiler.compile
            (Ftn_linpack.Fortran_sources.dot_product ~n:64 ~simdlen:4)
        in
        match art.Core.Compiler.device_hls with
        | Some d ->
          let ks = Schedule.analyse_kernel spec (kernel_of_module d) in
          check Alcotest.bool "reduction copies allocated" true
            (ks.Schedule.local_buffer_bytes > 0)
        | None -> Alcotest.fail "no device");
    tc "shell is charged exactly once" (fun () ->
        let ks = saxpy_schedule () in
        let r = Resources.estimate spec ks in
        check Alcotest.int "total = kernel + shell"
          (r.Resources.kernel.Resources.luts + spec.Fpga_spec.shell_luts)
          r.Resources.total.Resources.luts);
  ]

let timing_tests =
  [
    tc "kernel cycles from recorded stats" (fun () ->
        let ks = saxpy_schedule ~n:1000 () in
        let l = the_loop ks in
        let stats = Timing.make_stats () in
        Timing.record_loop stats ~loop_key:l.Schedule.loop_key ~iters:1000;
        let cycles = Timing.kernel_cycles ks stats in
        (* 1000 iterations at 32 cycles + one pipeline fill *)
        check (Alcotest.float 1.0) "cycles"
          (32000.0 +. float_of_int spec.Fpga_spec.pipeline_depth_cycles)
          cycles);
    tc "unrecorded loops contribute nothing" (fun () ->
        let ks = saxpy_schedule () in
        check (Alcotest.float 0.0) "zero" 0.0
          (Timing.kernel_cycles ks (Timing.make_stats ())));
    tc "stats merge accumulates" (fun () ->
        let a = Timing.make_stats () in
        let b = Timing.make_stats () in
        Timing.record_loop a ~loop_key:1 ~iters:10;
        Timing.record_loop b ~loop_key:1 ~iters:20;
        Timing.merge_into ~src:a ~dst:b;
        check
          (Alcotest.option Alcotest.int)
          "iters" (Some 30)
          (Hashtbl.find_opt b.Timing.iterations 1));
    tc "static estimate uses trip counts" (fun () ->
        let ks = saxpy_schedule ~n:1000 () in
        let static = Timing.static_kernel_cycles ks in
        check Alcotest.bool "close to dynamic" true
          (Float.abs (static -. 32100.0) < 1.0));
    tc "transfer time scales with bytes" (fun () ->
        let t1 = Timing.transfer_time_s spec ~bytes:4_000 in
        let t2 = Timing.transfer_time_s spec ~bytes:40_000_000 in
        check Alcotest.bool "bigger slower" true (t2 > t1);
        check Alcotest.bool "fixed floor" true
          (t1 >= spec.Fpga_spec.dma_fixed_overhead_s));
    tc "SAXPY N=10K lands near the paper's 1.251 ms" (fun () ->
        let ks = saxpy_schedule ~n:10_000 () in
        let l = the_loop ks in
        let stats = Timing.make_stats () in
        Timing.record_loop stats ~loop_key:l.Schedule.loop_key ~iters:10_000;
        let kernel = Timing.kernel_time_s spec ks stats in
        let total =
          kernel
          +. (3.0 *. Timing.alloc_overhead_s spec)
          +. Timing.launch_overhead_s spec
          +. (4.0 *. Timing.transfer_time_s spec ~bytes:40_000)
        in
        check Alcotest.bool "within 5%" true
          (Float.abs (total -. 1.251e-3) /. 1.251e-3 < 0.05));
  ]

let power_tests =
  [
    tc "activity grows with duty cycle" (fun () ->
        let a_short =
          Power.activity ~kernel_time_s:1e-5 ~device_time_s:1e-4
        in
        let a_long = Power.activity ~kernel_time_s:10.0 ~device_time_s:10.0 in
        check Alcotest.bool "monotone" true (a_long > a_short);
        check Alcotest.bool "approaches 1" true (a_long > 0.95 && a_long <= 1.0);
        check Alcotest.bool "idle floor" true
          (a_short >= Power.idle_dynamic_fraction));
    tc "fpga power sits in the paper's band" (fun () ->
        let ks = saxpy_schedule () in
        let r = Resources.estimate spec ks in
        let p_small = Power.fpga_power_w spec r ~kernel_time_s:1.2e-3 () in
        let p_large = Power.fpga_power_w spec r ~kernel_time_s:10.0 () in
        check Alcotest.bool "small in band" true (p_small > 21.0 && p_small < 23.0);
        check Alcotest.bool "large in band" true (p_large > 23.0 && p_large < 26.0);
        check Alcotest.bool "grows" true (p_large > p_small));
    tc "cpu draws roughly twice the fpga" (fun () ->
        let ks = saxpy_schedule () in
        let r = Resources.estimate spec ks in
        let fpga = Power.fpga_power_w spec r ~kernel_time_s:0.1 () in
        let cpu = Power.cpu_power_w spec ~kernel_time_s:0.1 in
        check Alcotest.bool "ratio" true (cpu /. fpga > 1.8 && cpu /. fpga < 3.0));
  ]

let dse_tests =
  let explore () =
    let art =
      Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:1024)
    in
    match art.Core.Compiler.device_hls with
    | Some d ->
      let ks = Schedule.analyse_kernel spec (kernel_of_module d) in
      Option.get (Dse.explore_kernel ~spec ks)
    | None -> Alcotest.fail "no device module"
  in
  [
    tc "explorer covers the requested factors" (fun () ->
        let r = explore () in
        check Alcotest.int "seven candidates" 7
          (List.length r.Dse.candidates));
    tc "cycles never increase with unroll" (fun () ->
        let r = explore () in
        let rec monotone = function
          | a :: (b :: _ as rest) ->
            a.Dse.cycles_per_iteration >= b.Dse.cycles_per_iteration -. 1e-9
            && monotone rest
          | _ -> true
        in
        check Alcotest.bool "monotone" true (monotone r.Dse.candidates));
    tc "pareto drops dominated plateau points" (fun () ->
        let r = explore () in
        (* once the port bound is reached, larger unrolls cost more LUTs at
           equal cycles and must not be on the frontier *)
        let plateau =
          List.filter
            (fun c -> c.Dse.cycles_per_iteration <= 32.0 +. 1e-9)
            r.Dse.candidates
        in
        check Alcotest.bool "several on plateau" true (List.length plateau > 1);
        let plateau_on_frontier =
          List.filter (fun c -> List.memq c r.Dse.pareto) plateau
        in
        check Alcotest.int "only the cheapest survives" 1
          (List.length plateau_on_frontier));
    tc "best respects the LUT budget" (fun () ->
        let art =
          Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:1024)
        in
        let ks =
          match art.Core.Compiler.device_hls with
          | Some d -> Schedule.analyse_kernel spec (kernel_of_module d)
          | None -> Alcotest.fail "no device"
        in
        let r = Option.get (Dse.explore_kernel ~spec ~lut_budget:9_500 ks) in
        (match r.Dse.best with
        | Some b ->
          check Alcotest.bool "within budget" true (b.Dse.kernel_luts <= 9_500)
        | None -> Alcotest.fail "expected a feasible point");
        let r2 = Option.get (Dse.explore_kernel ~spec ~lut_budget:1 ks) in
        check Alcotest.bool "infeasible budget" true (r2.Dse.best = None));
    tc "non-pipelined kernels yield no exploration" (fun () ->
        let b = Ftn_ir.Builder.create () in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"empty" ~args:[] ~result_tys:[]
            [ Ftn_dialects.Func_d.return () ]
        in
        ignore b;
        let ks = Schedule.analyse_kernel spec fn in
        check Alcotest.bool "none" true (Dse.explore_kernel ~spec ks = None));
  ]

let synth_tests =
  [
    tc "synthesis packages kernels into a bitstream" (fun () ->
        let bs =
          Synth.synthesise ~spec ~xclbin_name:"t.xclbin"
            (Ftn_linpack.Hls_baselines.saxpy_device ~n:100)
        in
        check Alcotest.string "name" "t.xclbin" bs.Bitstream.xclbin_name;
        check Alcotest.int "one kernel" 1 (List.length bs.Bitstream.kernels);
        check Alcotest.bool "log mentions synthesis" true
          (List.exists
             (fun l -> Astring_like.contains l "HLS synthesis")
             bs.Bitstream.build_log);
        check Alcotest.bool "find_kernel" true
          (Bitstream.find_kernel bs "saxpy_hw" <> None);
        check Alcotest.bool "missing kernel" true
          (Bitstream.find_kernel bs "nope" = None));
    tc "empty device module is a synthesis error" (fun () ->
        try
          ignore (Synth.synthesise ~spec (Op.module_op []));
          Alcotest.fail "expected error"
        with Synth.Synthesis_error _ -> ());
    tc "frontend choice is recorded" (fun () ->
        let bs =
          Synth.synthesise ~spec ~frontend:Resources.Clang_hls
            (Ftn_linpack.Hls_baselines.sgesl_device ~n:64)
        in
        check Alcotest.bool "clang" true (bs.Bitstream.frontend = Resources.Clang_hls));
  ]

let dataflow_tests =
  [
    tc "dataflow kernels are bound by the slowest stage" (fun () ->
        let n = 1000 in
        let sched df =
          Schedule.analyse_kernel spec
            (kernel_of_module
               (Ftn_linpack.Hls_baselines.scale_dataflow_device ~dataflow:df
                  ~n ()))
        in
        let with_df = sched true and without_df = sched false in
        check Alcotest.bool "flag" true with_df.Schedule.dataflow;
        check Alcotest.bool "no flag" false without_df.Schedule.dataflow;
        check Alcotest.int "three stages" 3
          (List.length with_df.Schedule.loops);
        let stats = Timing.make_stats () in
        List.iter
          (fun (l : Schedule.loop_info) ->
            Timing.record_loop stats ~loop_key:l.Schedule.loop_key ~iters:n)
          (Schedule.flatten_loops with_df.Schedule.loops);
        let c_df = Timing.kernel_cycles with_df stats in
        let c_seq = Timing.kernel_cycles without_df stats in
        check Alcotest.bool "overlap is faster" true (c_df < c_seq);
        (* the slowest stage is an m_axi stage at 16 cycles/iteration *)
        check (Alcotest.float 1.0) "bound by slowest"
          (16.0 *. float_of_int n +. float_of_int spec.Fpga_spec.pipeline_depth_cycles)
          c_df);
    tc "dataflow run produces correct values" (fun () ->
        let n = 64 in
        let r =
          Ftn_linpack.Hls_baselines.run_scale_dataflow ~n ~a:3.0 ()
        in
        Array.iteri
          (fun i v ->
            let expect =
              Ftn_linpack.References.to_f32 (3.0 *. float_of_int (i + 1))
            in
            if v <> expect then Alcotest.failf "y(%d) = %f" i v)
          r.Ftn_linpack.Hls_baselines.values);
  ]

let io_tests =
  [
    tc "save/load round-trips a bitstream" (fun () ->
        let bs =
          Synth.synthesise ~spec ~frontend:Resources.Clang_hls
            ~xclbin_name:"rt.xclbin"
            (Ftn_linpack.Hls_baselines.sgesl_device ~n:64)
        in
        let text = Bitstream_io.save bs in
        let bs' = Bitstream_io.load ~spec text in
        check Alcotest.string "name" bs.Bitstream.xclbin_name
          bs'.Bitstream.xclbin_name;
        check Alcotest.bool "frontend" true
          (bs'.Bitstream.frontend = Resources.Clang_hls);
        check Alcotest.int "kernels" 1 (List.length bs'.Bitstream.kernels);
        let r k = (List.hd k.Bitstream.kernels).Bitstream.kd_resources in
        check (Alcotest.float 0.001) "same LUTs" (r bs).Resources.lut_pct
          (r bs').Resources.lut_pct;
        check Alcotest.int "same DSPs" (r bs).Resources.total.Resources.dsps
          (r bs').Resources.total.Resources.dsps);
    tc "loaded bitstream executes identically" (fun () ->
        let art =
          Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:32)
        in
        let bs = Core.Compiler.synthesise art in
        let bs' = Bitstream_io.load ~spec (Bitstream_io.save bs) in
        let run host bitstream =
          Ftn_runtime.Executor.run ~host ~bitstream ()
        in
        let a = run art.Core.Compiler.host bs in
        let b = run art.Core.Compiler.host bs' in
        check (Alcotest.float 1e-12) "same simulated time"
          a.Ftn_runtime.Executor.device_time_s
          b.Ftn_runtime.Executor.device_time_s;
        check Alcotest.string "same output" a.Ftn_runtime.Executor.output
          b.Ftn_runtime.Executor.output);
    tc "bad magic is rejected" (fun () ->
        try
          ignore (Bitstream_io.load ~spec "not an xclbin");
          Alcotest.fail "expected Format_error"
        with Bitstream_io.Format_error _ -> ());
    tc "corrupt IR is rejected" (fun () ->
        let text =
          Bitstream_io.magic
          ^ "\nbackend: vitis\nname: x\nfrontend: mlir\n=== MODULE ===\n\"oops"
        in
        try
          ignore (Bitstream_io.load ~spec text);
          Alcotest.fail "expected Format_error"
        with Bitstream_io.Format_error _ -> ());
  ]

let () =
  Alcotest.run "hlsim"
    [
      ("schedule", schedule_tests);
      ("resources", resources_tests);
      ("timing", timing_tests);
      ("power", power_tests);
      ("synth", synth_tests);
      ("dse", dse_tests);
      ("bitstream-io", io_tests);
      ("dataflow", dataflow_tests);
    ]
