(* Tests for the IR interpreter: runtime values and buffers, scalar
   semantics, structured control flow, memory, calls, sequential OpenMP,
   and the loop statistics hook. Every suite that executes IR runs under
   both engines — the tree-walker and the closure compiler — and an
   "engines" suite checks the two agree on results and step counts. *)

open Ftn_ir
open Ftn_dialects
open Ftn_interp

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let engines = [ ("tree", `Tree); ("compiled", `Compiled) ]

(* Build a module with one function "f" and run it. *)
let run_fn ?engine ?handlers ~args ~arg_tys ~result_tys body_fn =
  let b = Builder.create () in
  let params = List.map (Builder.fresh b) arg_tys in
  let body = body_fn b params in
  let fn = Func_d.func ~sym_name:"f" ~args:params ~result_tys body in
  let m = Op.module_op [ fn ] in
  Verifier.verify_exn m;
  let state = Interp.make ?handlers ?engine [ m ] in
  Interp.run state ~entry:"f" ~args

let rtval = Alcotest.testable Rtval.pp (fun a b -> a = b)

(* --- rtval --- *)

let rtval_tests =
  [
    tc "buffer allocation and access" (fun () ->
        let buf = Rtval.alloc_buffer Types.F32 [ 2; 3 ] in
        check Alcotest.int "len" 6 (Rtval.buffer_len buf);
        Rtval.store buf [ 1; 2 ] (Rtval.Float 5.0);
        check rtval "load back" (Rtval.Float 5.0) (Rtval.load buf [ 1; 2 ]);
        check rtval "other slot zero" (Rtval.Float 0.0) (Rtval.load buf [ 0; 0 ]));
    tc "rank-0 buffers" (fun () ->
        let buf = Rtval.alloc_buffer Types.I32 [] in
        Rtval.store buf [] (Rtval.Int 7);
        check rtval "scalar" (Rtval.Int 7) (Rtval.load buf []));
    tc "bounds checking" (fun () ->
        let buf = Rtval.alloc_buffer Types.F32 [ 4 ] in
        Alcotest.check_raises "oob"
          (Invalid_argument "index 4 out of bounds for dimension of size 4")
          (fun () -> ignore (Rtval.load buf [ 4 ])));
    tc "f32 stores round to single precision" (fun () ->
        let buf = Rtval.alloc_buffer Types.F32 [ 1 ] in
        Rtval.store buf [ 0 ] (Rtval.Float 0.1);
        (match Rtval.load buf [ 0 ] with
        | Rtval.Float x ->
          check Alcotest.bool "rounded" true (x <> 0.1 && Float.abs (x -. 0.1) < 1e-7)
        | _ -> Alcotest.fail "not a float");
        let buf64 = Rtval.alloc_buffer Types.F64 [ 1 ] in
        Rtval.store buf64 [ 0 ] (Rtval.Float 0.1);
        check rtval "f64 exact" (Rtval.Float 0.1) (Rtval.load buf64 [ 0 ]));
    tc "i1 buffers store booleans" (fun () ->
        let buf = Rtval.alloc_buffer Types.I1 [ 1 ] in
        Rtval.store buf [ 0 ] (Rtval.Bool true);
        check rtval "bool" (Rtval.Bool true) (Rtval.load buf [ 0 ]));
    tc "copy_into converts representation" (fun () ->
        let src = Rtval.of_int_array Types.I32 [| 1; 2; 3 |] in
        let dst = Rtval.alloc_buffer Types.F32 [ 3 ] in
        Rtval.copy_into ~src ~dst;
        check rtval "converted" (Rtval.Float 2.0) (Rtval.load dst [ 1 ]));
    tc "byte size" (fun () ->
        check Alcotest.int "f64 x4" 32
          (Rtval.byte_size (Rtval.alloc_buffer Types.F64 [ 4 ]));
        check Alcotest.int "rank0 f32" 4
          (Rtval.byte_size (Rtval.alloc_buffer Types.F32 [])));
  ]

(* --- scalar ops --- *)

let scalar_tests engine =
  [
    tc "integer arithmetic" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Int 7; Rtval.Int 3 ]
            ~arg_tys:[ Types.I32; Types.I32 ] ~result_tys:[ Types.I32 ]
            (fun b params ->
              match params with
              | [ x; y ] ->
                let s = Arith.subi b x y in
                let m = Arith.muli b (Op.result1 s) y in
                [ s; m; Func_d.return ~operands:[ Op.result1 m ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "result" [ Rtval.Int 12 ] r);
    tc "float arithmetic rounds f32" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Float 1.0 ] ~arg_tys:[ Types.F32 ]
            ~result_tys:[ Types.F32 ]
            (fun b params ->
              match params with
              | [ x ] ->
                let c = Arith.const_f32 b 0.1 in
                let s = Arith.addf b x (Op.result1 c) in
                [ c; s; Func_d.return ~operands:[ Op.result1 s ] () ]
              | _ -> assert false)
        in
        match r with
        | [ Rtval.Float x ] ->
          check Alcotest.bool "single precision" true
            (Float.abs (x -. 1.1) < 1e-6)
        | _ -> Alcotest.fail "bad result");
    tc "division by zero raises" (fun () ->
        try
          ignore
            (run_fn ~engine ~args:[ Rtval.Int 1; Rtval.Int 0 ]
               ~arg_tys:[ Types.I32; Types.I32 ] ~result_tys:[ Types.I32 ]
               (fun b params ->
                 match params with
                 | [ x; y ] ->
                   let d = Arith.divsi b x y in
                   [ d; Func_d.return ~operands:[ Op.result1 d ] () ]
                 | _ -> assert false));
          Alcotest.fail "expected error"
        with Interp.Interp_error _ -> ());
    tc "comparisons and select" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Int 5; Rtval.Int 9 ]
            ~arg_tys:[ Types.I32; Types.I32 ] ~result_tys:[ Types.I32 ]
            (fun b params ->
              match params with
              | [ x; y ] ->
                let c = Arith.cmpi b Arith.Sgt x y in
                let s = Arith.select b (Op.result1 c) x y in
                [ c; s; Func_d.return ~operands:[ Op.result1 s ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "max" [ Rtval.Int 9 ] r);
    tc "math functions" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Float 4.0 ] ~arg_tys:[ Types.F64 ]
            ~result_tys:[ Types.F64 ]
            (fun b params ->
              match params with
              | [ x ] ->
                let s = Math_d.sqrt b x in
                [ s; Func_d.return ~operands:[ Op.result1 s ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "sqrt" [ Rtval.Float 2.0 ] r);
    tc "casts" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Float 3.7 ] ~arg_tys:[ Types.F64 ]
            ~result_tys:[ Types.I32 ]
            (fun b params ->
              match params with
              | [ x ] ->
                let c = Arith.fptosi b x Types.I32 in
                [ c; Func_d.return ~operands:[ Op.result1 c ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "truncates" [ Rtval.Int 3 ] r);
  ]

(* --- control flow --- *)

let control_tests engine =
  [
    tc "scf.for accumulates through iter args" (fun () ->
        (* sum 0..9 *)
        let r =
          run_fn ~engine ~args:[] ~arg_tys:[] ~result_tys:[ Types.Index ]
            (fun b _ ->
              let z = Arith.const_index b 0 in
              let n = Arith.const_index b 10 in
              let one = Arith.const_index b 1 in
              let loop =
                Scf.for_ b ~lb:(Op.result1 z) ~ub:(Op.result1 n)
                  ~step:(Op.result1 one)
                  ~iter_args:[ Op.result1 z ]
                  (fun iv args ->
                    let acc = List.hd args in
                    let s = Arith.addi b acc iv in
                    [ s; Scf.yield ~operands:[ Op.result1 s ] () ])
              in
              [ z; n; one; loop; Func_d.return ~operands:[ Op.result1 loop ] () ])
        in
        check (Alcotest.list rtval) "sum" [ Rtval.Int 45 ] r);
    tc "scf.for with step" (fun () ->
        let r =
          run_fn ~engine ~args:[] ~arg_tys:[] ~result_tys:[ Types.Index ]
            (fun b _ ->
              let z = Arith.const_index b 0 in
              let n = Arith.const_index b 10 in
              let three = Arith.const_index b 3 in
              let loop =
                Scf.for_ b ~lb:(Op.result1 z) ~ub:(Op.result1 n)
                  ~step:(Op.result1 three)
                  ~iter_args:[ Op.result1 z ]
                  (fun _ args ->
                    let one = Arith.const_index b 1 in
                    let s = Arith.addi b (List.hd args) (Op.result1 one) in
                    [ one; s; Scf.yield ~operands:[ Op.result1 s ] () ])
              in
              [ z; n; three; loop; Func_d.return ~operands:[ Op.result1 loop ] () ])
        in
        (* iterations at 0,3,6,9 -> 4 *)
        check (Alcotest.list rtval) "trip count" [ Rtval.Int 4 ] r);
    tc "scf.if takes the right branch" (fun () ->
        let branch cond_val =
          run_fn ~engine ~args:[ Rtval.Bool cond_val ] ~arg_tys:[ Types.I1 ]
            ~result_tys:[ Types.I32 ]
            (fun b params ->
              match params with
              | [ c ] ->
                let t = Arith.const_i32 b 1 in
                let f = Arith.const_i32 b 2 in
                let if_op =
                  Scf.if_ b ~cond:c ~result_tys:[ Types.I32 ]
                    ~then_ops:[ t; Scf.yield ~operands:[ Op.result1 t ] () ]
                    ~else_ops:[ f; Scf.yield ~operands:[ Op.result1 f ] () ]
                    ()
                in
                [ if_op; Func_d.return ~operands:[ Op.result1 if_op ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "then" [ Rtval.Int 1 ] (branch true);
        check (Alcotest.list rtval) "else" [ Rtval.Int 2 ] (branch false));
    tc "scf.while counts down" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Int 5 ] ~arg_tys:[ Types.I32 ]
            ~result_tys:[ Types.I32 ]
            (fun b params ->
              match params with
              | [ n ] ->
                let w =
                  Scf.while_ b ~inits:[ n ]
                    ~make_before:(fun args ->
                      let x = List.hd args in
                      let z = Arith.const_i32 b 0 in
                      let c = Arith.cmpi b Arith.Sgt x (Op.result1 z) in
                      [ z; c; Scf.condition ~cond:(Op.result1 c) ~operands:[ x ] ])
                    ~make_after:(fun args ->
                      let x = List.hd args in
                      let one = Arith.const_i32 b 1 in
                      let d = Arith.subi b x (Op.result1 one) in
                      [ one; d; Scf.yield ~operands:[ Op.result1 d ] () ])
                in
                [ w; Func_d.return ~operands:[ Op.result1 w ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "zero" [ Rtval.Int 0 ] r);
    tc "nested function calls" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        let inner =
          let double = Arith.addi b x x in
          Func_d.func ~sym_name:"double" ~args:[ x ] ~result_tys:[ Types.I32 ]
            [ double; Func_d.return ~operands:[ Op.result1 double ] () ]
        in
        let y = Builder.fresh b Types.I32 in
        let outer =
          let call = Func_d.call b ~callee:"double" ~operands:[ y ]
              ~result_tys:[ Types.I32 ] in
          Func_d.func ~sym_name:"main_fn" ~args:[ y ] ~result_tys:[ Types.I32 ]
            [ call; Func_d.return ~operands:[ Op.result1 call ] () ]
        in
        let m = Op.module_op [ inner; outer ] in
        let state = Interp.make ~engine [ m ] in
        check (Alcotest.list rtval) "result" [ Rtval.Int 42 ]
          (Interp.run state ~entry:"main_fn" ~args:[ Rtval.Int 21 ]));
    tc "unknown function errors" (fun () ->
        let state = Interp.make ~engine [ Op.module_op [] ] in
        try
          ignore (Interp.run state ~entry:"ghost" ~args:[]);
          Alcotest.fail "expected error"
        with Interp.Interp_error _ -> ());
    tc "step limit aborts runaway loops" (fun () ->
        let b = Builder.create () in
        let z = Arith.const_index b 0 in
        let n = Arith.const_index b 1000000 in
        let one = Arith.const_index b 1 in
        let loop =
          Scf.for_ b ~lb:(Op.result1 z) ~ub:(Op.result1 n)
            ~step:(Op.result1 one) (fun _ _ -> [ Scf.yield () ])
        in
        let fn =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ z; n; one; loop; Func_d.return () ]
        in
        let state =
          Interp.make ~engine ~max_steps:100 [ Op.module_op [ fn ] ]
        in
        try
          ignore (Interp.run state ~entry:"f" ~args:[]);
          Alcotest.fail "expected step limit"
        with Interp.Interp_error _ -> ());
    tc "handlers run before defaults" (fun () ->
        let intercepted = ref false in
        let h =
          Interp.handler (fun _ _ op _ ->
              if Op.name op = "arith.constant" then begin
                intercepted := true;
                Some [ Rtval.Int 99 ]
              end
              else None)
        in
        let r =
          run_fn ~engine ~handlers:[ h ] ~args:[] ~arg_tys:[]
            ~result_tys:[ Types.I32 ]
            (fun b _ ->
              let c = Arith.const_i32 b 1 in
              [ c; Func_d.return ~operands:[ Op.result1 c ] () ])
        in
        check Alcotest.bool "intercepted" true !intercepted;
        check (Alcotest.list rtval) "handler value" [ Rtval.Int 99 ] r);
    tc "Names-domain handlers only see their ops" (fun () ->
        let seen = ref [] in
        let h =
          Interp.handler ~domain:(Interp.Names [ "arith.addi" ])
            (fun _ _ op _ ->
              seen := Op.name op :: !seen;
              Some [ Rtval.Int 41 ])
        in
        let r =
          run_fn ~engine ~handlers:[ h ] ~args:[] ~arg_tys:[]
            ~result_tys:[ Types.I32 ]
            (fun b _ ->
              let c = Arith.const_i32 b 1 in
              let a = Arith.addi b (Op.result1 c) (Op.result1 c) in
              [ c; a; Func_d.return ~operands:[ Op.result1 a ] () ])
        in
        check (Alcotest.list rtval) "intercepted value" [ Rtval.Int 41 ] r;
        check (Alcotest.list Alcotest.string) "only addi" [ "arith.addi" ]
          !seen);
    tc "on_loop reports iteration counts" (fun () ->
        let counts = ref [] in
        let b = Builder.create () in
        let z = Arith.const_index b 0 in
        let n = Arith.const_index b 7 in
        let one = Arith.const_index b 1 in
        let loop =
          Scf.for_ b ~lb:(Op.result1 z) ~ub:(Op.result1 n)
            ~step:(Op.result1 one) (fun _ _ -> [ Scf.yield () ])
        in
        let fn =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ z; n; one; loop; Func_d.return () ]
        in
        let state = Interp.make ~engine [ Op.module_op [ fn ] ] in
        state.Interp.on_loop <-
          Some (fun ~loop_key ~iters -> counts := (loop_key, iters) :: !counts);
        ignore (Interp.run state ~entry:"f" ~args:[]);
        match !counts with
        | [ (_, 7) ] -> ()
        | _ -> Alcotest.fail "expected one loop with 7 iterations");
  ]

(* --- memory and omp --- *)

let memory_tests engine =
  [
    tc "alloca, store, load" (fun () ->
        let r =
          run_fn ~engine ~args:[] ~arg_tys:[] ~result_tys:[ Types.F64 ]
            (fun b _ ->
              let buf = Memref_d.alloca b (Types.memref_static [ 4 ] Types.F64) in
              let i = Arith.const_index b 2 in
              let v = Arith.const_f64 b 6.5 in
              let st = Memref_d.store (Op.result1 v) (Op.result1 buf) [ Op.result1 i ] in
              let ld = Memref_d.load b (Op.result1 buf) [ Op.result1 i ] in
              [ buf; i; v; st; ld; Func_d.return ~operands:[ Op.result1 ld ] () ])
        in
        check (Alcotest.list rtval) "roundtrip" [ Rtval.Float 6.5 ] r);
    tc "dynamic alloca takes size operands" (fun () ->
        let r =
          run_fn ~engine ~args:[ Rtval.Int 5 ] ~arg_tys:[ Types.Index ]
            ~result_tys:[ Types.Index ]
            (fun b params ->
              match params with
              | [ n ] ->
                let buf =
                  Memref_d.alloca b ~dynamic_sizes:[ n ]
                    (Types.memref_dynamic 1 Types.F32)
                in
                let z = Arith.const_index b 0 in
                let d = Memref_d.dim b (Op.result1 buf) (Op.result1 z) in
                [ buf; z; d; Func_d.return ~operands:[ Op.result1 d ] () ]
              | _ -> assert false)
        in
        check (Alcotest.list rtval) "dim" [ Rtval.Int 5 ] r);
    tc "buffers alias through calls" (fun () ->
        (* callee writes through the memref; caller observes it *)
        let b = Builder.create () in
        let p = Builder.fresh b (Types.memref [] Types.I32) in
        let callee =
          let v = Arith.const_i32 b 77 in
          Func_d.func ~sym_name:"set77" ~args:[ p ] ~result_tys:[]
            [ v; Memref_d.store (Op.result1 v) p []; Func_d.return () ]
        in
        let main_fn =
          let buf = Memref_d.alloca b (Types.memref [] Types.I32) in
          let call =
            Func_d.call b ~callee:"set77" ~operands:[ Op.result1 buf ]
              ~result_tys:[]
          in
          let ld = Memref_d.load b (Op.result1 buf) [] in
          Func_d.func ~sym_name:"m" ~args:[] ~result_tys:[ Types.I32 ]
            [ buf; call; ld; Func_d.return ~operands:[ Op.result1 ld ] () ]
        in
        let state = Interp.make ~engine [ Op.module_op [ callee; main_fn ] ] in
        check (Alcotest.list rtval) "aliased" [ Rtval.Int 77 ]
          (Interp.run state ~entry:"m" ~args:[]));
    tc "omp.parallel_do executes sequentially with inclusive bounds" (fun () ->
        let m =
          Ftn_frontend.Frontend.to_core
            "program p\nreal :: a(5)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 5\na(i) = real(i)\nend do\n!$omp end target parallel do\nprint *, a(5)\nend program"
        in
        let out, _ = Ftn_runtime.Executor.run_cpu ~engine m in
        check Alcotest.bool "a(5)=5" true
          (Astring_like.contains out "5.000000"));
    tc "omp.parallel_do with more bound dims than ivs doesn't crash" (fun () ->
        (* collapse=2 with a single induction variable is rejected by the
           verifier, but the interpreter must still take the safe tail
           rather than crash on List.tl — run it unverified. *)
        let b = Builder.create () in
        let lb = Arith.const_index b 1 in
        let ub = Arith.const_index b 2 in
        let step = Arith.const_index b 1 in
        let buf = Memref_d.alloca b (Types.memref [] Types.I32) in
        let iv = Builder.fresh b Types.Index in
        let body =
          let ld = Memref_d.load b (Op.result1 buf) [] in
          let one = Arith.const_i32 b 1 in
          let s = Arith.addi b (Op.result1 ld) (Op.result1 one) in
          [ ld; one; s;
            Memref_d.store (Op.result1 s) (Op.result1 buf) [];
            Omp.terminator () ]
        in
        let pd =
          Op.make "omp.parallel_do"
            ~operands:
              [ Op.result1 lb; Op.result1 ub; Op.result1 step;
                Op.result1 lb; Op.result1 ub; Op.result1 step ]
            ~attrs:[ ("collapse", Attr.i32 2); ("simd", Attr.Bool false) ]
            ~regions:[ Op.region ~args:[ iv ] body ]
        in
        let ld2 = Memref_d.load b (Op.result1 buf) [] in
        let fn =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[ Types.I32 ]
            [ lb; ub; step; buf; pd; ld2;
              Func_d.return ~operands:[ Op.result1 ld2 ] () ]
        in
        let state = Interp.make ~engine [ Op.module_op [ fn ] ] in
        check (Alcotest.list rtval) "2x2 iterations" [ Rtval.Int 4 ]
          (Interp.run state ~entry:"f" ~args:[]));
    tc "print intrinsics capture output" (fun () ->
        let m =
          Ftn_frontend.Frontend.to_core
            "program p\nprint *, 'hello', 3, 2.5\nend program"
        in
        let out, _ = Ftn_runtime.Executor.run_cpu ~engine m in
        check Alcotest.bool "text" true (Astring_like.contains out "hello");
        check Alcotest.bool "int" true (Astring_like.contains out "3");
        check Alcotest.bool "float" true (Astring_like.contains out "2.5"));
  ]

let stream_tests engine =
  [
    tc "streams are FIFOs" (fun () ->
        let b = Builder.create () in
        let ops = ref [] in
        let emit op = ops := op :: !ops in
        let emit_get op =
          emit op;
          Op.result1 op
        in
        let s = emit_get (Ftn_dialects.Hls.stream_create b Types.F32) in
        let c1 = emit_get (Arith.const_f32 b 1.5) in
        let c2 = emit_get (Arith.const_f32 b 2.5) in
        emit (Ftn_dialects.Hls.stream_write ~stream:s ~value:c1);
        emit (Ftn_dialects.Hls.stream_write ~stream:s ~value:c2);
        let r1 = emit_get (Ftn_dialects.Hls.stream_read b s) in
        let r2 = emit_get (Ftn_dialects.Hls.stream_read b s) in
        let sub = emit_get (Arith.subf b r2 r1) in
        emit (Func_d.return ~operands:[ sub ] ());
        let fn =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[ Types.F32 ]
            (List.rev !ops)
        in
        let state = Interp.make ~engine [ Op.module_op [ fn ] ] in
        check (Alcotest.list rtval) "fifo order" [ Rtval.Float 1.0 ]
          (Interp.run state ~entry:"f" ~args:[]));
    tc "reading an empty stream errors" (fun () ->
        let b = Builder.create () in
        let s_op = Ftn_dialects.Hls.stream_create b Types.F32 in
        let rd = Ftn_dialects.Hls.stream_read b (Op.result1 s_op) in
        let fn =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ s_op; rd; Func_d.return () ]
        in
        let state = Interp.make ~engine [ Op.module_op [ fn ] ] in
        try
          ignore (Interp.run state ~entry:"f" ~args:[]);
          Alcotest.fail "expected error"
        with Interp.Interp_error _ -> ());
  ]

(* --- engine equivalence --- *)

let engine_tests =
  [
    tc "tree and compiled agree on results and steps" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        let inner =
          let d = Arith.addi b x x in
          Func_d.func ~sym_name:"double" ~args:[ x ] ~result_tys:[ Types.I32 ]
            [ d; Func_d.return ~operands:[ Op.result1 d ] () ]
        in
        let main_fn =
          let z = Arith.const_i32 b 0 in
          let lb = Arith.const_index b 0 in
          let ub = Arith.const_index b 8 in
          let one = Arith.const_index b 1 in
          let loop =
            Scf.for_ b ~lb:(Op.result1 lb) ~ub:(Op.result1 ub)
              ~step:(Op.result1 one)
              ~iter_args:[ Op.result1 z ]
              (fun iv args ->
                let i32 = Arith.index_cast b iv Types.I32 in
                let c =
                  Func_d.call b ~callee:"double"
                    ~operands:[ Op.result1 i32 ] ~result_tys:[ Types.I32 ]
                in
                let s = Arith.addi b (List.hd args) (Op.result1 c) in
                [ i32; c; s; Scf.yield ~operands:[ Op.result1 s ] () ])
          in
          Func_d.func ~sym_name:"m" ~args:[] ~result_tys:[ Types.I32 ]
            [ z; lb; ub; one; loop;
              Func_d.return ~operands:[ Op.result1 loop ] () ]
        in
        let m = Op.module_op [ inner; main_fn ] in
        Verifier.verify_exn m;
        let run engine =
          let state = Interp.make ~engine [ m ] in
          let r = Interp.run state ~entry:"m" ~args:[] in
          (r, state.Interp.steps)
        in
        let r_tree, steps_tree = run `Tree in
        let r_comp, steps_comp = run `Compiled in
        check (Alcotest.list rtval) "same results" r_tree r_comp;
        check Alcotest.int "same steps" steps_tree steps_comp;
        (* sum over i in 0..7 of 2i *)
        check (Alcotest.list rtval) "value" [ Rtval.Int 56 ] r_comp);
    tc "compiled functions are cached per state" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        let fn =
          let d = Arith.addi b x x in
          Func_d.func ~sym_name:"double" ~args:[ x ] ~result_tys:[ Types.I32 ]
            [ d; Func_d.return ~operands:[ Op.result1 d ] () ]
        in
        let m = Op.module_op [ fn ] in
        let state = Interp.make ~engine:`Compiled [ m ] in
        let before =
          Ftn_obs.Metrics.counter_value "interp.compile_cache_hits"
        in
        ignore (Interp.run state ~entry:"double" ~args:[ Rtval.Int 1 ]);
        ignore (Interp.run state ~entry:"double" ~args:[ Rtval.Int 2 ]);
        ignore (Interp.run state ~entry:"double" ~args:[ Rtval.Int 3 ]);
        let after =
          Ftn_obs.Metrics.counter_value "interp.compile_cache_hits"
        in
        check Alcotest.bool "relaunches hit the cache" true
          (after - before >= 2));
  ]

let () =
  let per_engine mk =
    List.map (fun (tag, engine) -> (tag, mk engine)) engines
  in
  Alcotest.run "interp"
    ([ ("rtval", rtval_tests) ]
    @ List.concat_map
        (fun (name, mk) ->
          per_engine mk
          |> List.map (fun (tag, tests) -> (name ^ "-" ^ tag, tests)))
        [
          ("scalars", scalar_tests);
          ("control", control_tests);
          ("memory", memory_tests);
          ("streams", stream_tests);
        ]
    @ [ ("engines", engine_tests) ])
