(* Tests for the IR core: types, attributes, values, ops, builder,
   printer/parser round-trips, verifier, rewrite driver and pass manager. *)

open Ftn_ir

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let ty_str = Alcotest.testable (Fmt.of_to_string Types.to_string) Types.equal

(* --- types --- *)

let types_tests =
  [
    tc "scalar printing" (fun () ->
        check Alcotest.string "i32" "i32" (Types.to_string Types.I32);
        check Alcotest.string "f64" "f64" (Types.to_string Types.F64);
        check Alcotest.string "index" "index" (Types.to_string Types.Index));
    tc "memref printing" (fun () ->
        check Alcotest.string "static"
          "memref<100xf64, 1 : i32>"
          (Types.to_string
             (Types.memref_static ~memory_space:1 [ 100 ] Types.F64));
        check Alcotest.string "default space" "memref<4x5xf32>"
          (Types.to_string (Types.memref_static [ 4; 5 ] Types.F32));
        check Alcotest.string "dynamic" "memref<?xf32>"
          (Types.to_string (Types.memref_dynamic 1 Types.F32));
        check Alcotest.string "rank-0" "memref<f32>"
          (Types.to_string (Types.memref [] Types.F32)));
    tc "dialect type printing" (fun () ->
        check Alcotest.string "handle" "!device.kernelhandle"
          (Types.to_string Types.Kernel_handle);
        check Alcotest.string "proto" "!hls.axi_protocol"
          (Types.to_string Types.Axi_protocol);
        check Alcotest.string "stream" "!hls.stream<f32>"
          (Types.to_string (Types.Stream Types.F32));
        check Alcotest.string "ptr" "!llvm.ptr<f32>"
          (Types.to_string (Types.Ptr Types.F32)));
    tc "equality" (fun () ->
        check Alcotest.bool "same memref" true
          (Types.equal
             (Types.memref_static [ 3 ] Types.F32)
             (Types.memref_static [ 3 ] Types.F32));
        check Alcotest.bool "different space" false
          (Types.equal
             (Types.memref_static ~memory_space:1 [ 3 ] Types.F32)
             (Types.memref_static [ 3 ] Types.F32));
        check Alcotest.bool "scalar vs memref" false
          (Types.equal Types.F32 (Types.memref [] Types.F32)));
    tc "bitwidth and byte size" (fun () ->
        check Alcotest.int "i1" 1 (Types.bitwidth Types.I1);
        check Alcotest.int "f32" 32 (Types.bitwidth Types.F32);
        check Alcotest.int "f64 bytes" 8 (Types.byte_size Types.F64);
        check Alcotest.int "i1 bytes" 1 (Types.byte_size Types.I1);
        Alcotest.check_raises "memref has no bitwidth"
          (Invalid_argument "Types.bitwidth: not a scalar type") (fun () ->
            ignore (Types.bitwidth (Types.memref [] Types.F32))));
    tc "memref element count" (fun () ->
        check Alcotest.int "2x3" 6
          (Types.memref_num_elements
             { Types.shape = [ Types.Static 2; Types.Static 3 ];
               elt = Types.F32; memory_space = 0 });
        check Alcotest.int "rank-0" 1
          (Types.memref_num_elements
             { Types.shape = []; elt = Types.F32; memory_space = 0 }));
    tc "classification" (fun () ->
        check Alcotest.bool "index is integer" true (Types.is_integer Types.Index);
        check Alcotest.bool "f32 is float" true (Types.is_float Types.F32);
        check Alcotest.bool "f32 not integer" false (Types.is_integer Types.F32);
        check Alcotest.bool "memref" true
          (Types.is_memref (Types.memref [] Types.F32)));
    tc "type parse round-trip" (fun () ->
        let cases =
          [ "i1"; "i32"; "index"; "f32"; "f64"; "memref<100xf32>";
            "memref<?x3xf64, 2 : i32>"; "memref<f32>"; "vector<4xf32>";
            "!device.kernelhandle"; "!hls.axi_protocol"; "!hls.stream<f64>";
            "!llvm.ptr<i64>"; "tuple<i32, f32>" ]
        in
        List.iter
          (fun s ->
            let ty = Ir_parser.parse_type_string s in
            check ty_str s ty (Ir_parser.parse_type_string (Types.to_string ty)))
          cases);
  ]

(* --- attributes --- *)

let attr_tests =
  [
    tc "printing" (fun () ->
        check Alcotest.string "int" "42 : i32" (Attr.to_string (Attr.i32 42));
        check Alcotest.string "string" "\"gmem0\""
          (Attr.to_string (Attr.String "gmem0"));
        check Alcotest.string "symbol" "@my_kernel"
          (Attr.to_string (Attr.Symbol "my_kernel"));
        check Alcotest.string "bool" "true" (Attr.to_string (Attr.Bool true));
        check Alcotest.string "array" "[1 : i64, 2 : i64]"
          (Attr.to_string (Attr.Array [ Attr.i64 1; Attr.i64 2 ])));
    tc "string escaping" (fun () ->
        check Alcotest.string "quotes" "\"a\\\"b\""
          (Attr.to_string (Attr.String "a\"b")));
    tc "accessors" (fun () ->
        check (Alcotest.option Alcotest.int) "int" (Some 7)
          (Attr.as_int (Attr.i32 7));
        check (Alcotest.option Alcotest.int) "not int" None
          (Attr.as_int (Attr.String "x"));
        check (Alcotest.option Alcotest.string) "sym" (Some "f")
          (Attr.as_symbol (Attr.Symbol "f"));
        check (Alcotest.option Alcotest.bool) "bool" (Some false)
          (Attr.as_bool (Attr.Bool false)));
    tc "equality" (fun () ->
        check Alcotest.bool "int eq" true (Attr.equal (Attr.i32 1) (Attr.i32 1));
        check Alcotest.bool "int ty neq" false
          (Attr.equal (Attr.i32 1) (Attr.i64 1));
        check Alcotest.bool "dict" true
          (Attr.equal
             (Attr.Dict [ ("a", Attr.Bool true) ])
             (Attr.Dict [ ("a", Attr.Bool true) ])));
  ]

(* --- values and ops --- *)

let mk_add b =
  let x = Builder.fresh b Types.I32 in
  let y = Builder.fresh b Types.I32 in
  (x, y, Ftn_dialects.Arith.addi b x y)

let op_tests =
  [
    tc "value identity" (fun () ->
        let b = Builder.create () in
        let v1 = Builder.fresh b Types.I32 in
        let v2 = Builder.fresh b Types.I32 in
        check Alcotest.bool "distinct" false (Value.equal v1 v2);
        check Alcotest.bool "self" true (Value.equal v1 v1);
        check Alcotest.int "sequential ids" (Value.id v1 + 1) (Value.id v2));
    tc "op accessors" (fun () ->
        let b = Builder.create () in
        let x, y, add = mk_add b in
        check Alcotest.string "name" "arith.addi" (Op.name add);
        check Alcotest.int "operands" 2 (List.length (Op.operands add));
        check Alcotest.string "dialect" "arith" (Op.dialect add);
        check Alcotest.bool "first operand" true
          (Value.equal x (Op.operand add 0));
        check Alcotest.bool "second operand" true
          (Value.equal y (Op.operand add 1));
        check Alcotest.bool "result typed" true
          (Types.equal Types.I32 (Value.ty (Op.result1 add))));
    tc "attr manipulation" (fun () ->
        let op = Op.make "test.op" ~attrs:[ ("k", Attr.i32 1) ] in
        check (Alcotest.option Alcotest.int) "get" (Some 1) (Op.int_attr op "k");
        let op = Op.set_attr op "k" (Attr.i32 2) in
        check (Alcotest.option Alcotest.int) "set" (Some 2) (Op.int_attr op "k");
        let op = Op.remove_attr op "k" in
        check Alcotest.bool "removed" false (Op.has_attr op "k"));
    tc "walk and count" (fun () ->
        let b = Builder.create () in
        let _, _, add = mk_add b in
        let m = Op.module_op [ add ] in
        check Alcotest.int "total ops" 2 (Op.count (fun _ -> true) m);
        check Alcotest.int "adds" 1
          (Op.count (fun o -> Op.name o = "arith.addi") m));
    tc "collect preserves order" (fun () ->
        let b = Builder.create () in
        let c1 = Ftn_dialects.Arith.const_i32 b 1 in
        let c2 = Ftn_dialects.Arith.const_i32 b 2 in
        let m = Op.module_op [ c1; c2 ] in
        let found = Op.collect (fun o -> Op.name o = "arith.constant") m in
        check Alcotest.int "two" 2 (List.length found);
        check Alcotest.bool "order" true
          (Value.equal (Op.result1 (List.nth found 0)) (Op.result1 c1)));
    tc "substitute rewrites uses not defs" (fun () ->
        let b = Builder.create () in
        let x, y, add = mk_add b in
        let z = Builder.fresh b Types.I32 in
        let add' =
          Op.substitute (fun v -> if Value.equal v x then Some z else None) add
        in
        check Alcotest.bool "x replaced" true (Value.equal z (Op.operand add' 0));
        check Alcotest.bool "y kept" true (Value.equal y (Op.operand add' 1));
        check Alcotest.bool "result kept" true
          (Value.equal (Op.result1 add) (Op.result1 add')));
    tc "free values of a region" (fun () ->
        let b = Builder.create () in
        let outer = Builder.fresh b Types.Index in
        let inner_op = Op.make "memref.dma_wait" ~attrs:[ ("tag", Attr.i32 0) ] in
        let use = Op.make "test.use" ~operands:[ outer ] in
        let frees = Op.free_values_of_ops [ inner_op; use ] in
        check Alcotest.int "one free" 1 (Value.Set.cardinal frees);
        check Alcotest.bool "it is outer" true (Value.Set.mem outer frees));
    tc "module helpers" (fun () ->
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ Ftn_dialects.Func_d.return () ]
        in
        let m = Op.module_op [ fn ] in
        check Alcotest.bool "is module" true (Op.is_module m);
        check Alcotest.bool "find f" true (Op.find_function m "f" <> None);
        check Alcotest.bool "no g" true (Op.find_function m "g" = None));
    tc "clone remaps internal values" (fun () ->
        let b = Builder.create () in
        let x, _, add = mk_add b in
        let use = Op.make "test.use" ~operands:[ Op.result1 add ] in
        let wrapper = Op.make "test.wrap" ~regions:[ Op.region [ add; use ] ] in
        let cloned, mapping = Builder.clone b wrapper in
        let cloned_add = List.hd (Op.region_body cloned 0) in
        let cloned_use = List.nth (Op.region_body cloned 0) 1 in
        check Alcotest.bool "result remapped" false
          (Value.equal (Op.result1 add) (Op.result1 cloned_add));
        check Alcotest.bool "use follows" true
          (Value.equal (Op.result1 cloned_add) (Op.operand cloned_use 0));
        check Alcotest.bool "free value unmapped" true
          (Value.equal x (Op.operand cloned_add 0));
        check Alcotest.bool "mapping recorded" true
          (Value.Map.mem (Op.result1 add) mapping));
  ]

(* --- printer / parser --- *)

let roundtrip m =
  let text = Printer.to_string m in
  let reparsed = Ir_parser.parse_module text in
  check Alcotest.string "round trip" text (Printer.to_string reparsed)

let parser_tests =
  [
    tc "simple op round-trip" (fun () ->
        let b = Builder.create () in
        let c = Ftn_dialects.Arith.const_f32 b 1.5 in
        roundtrip (Op.module_op [ c ]));
    tc "regions round-trip" (fun () ->
        let b = Builder.create () in
        let lb = Ftn_dialects.Arith.const_index b 0 in
        let ub = Ftn_dialects.Arith.const_index b 10 in
        let loop =
          Ftn_dialects.Scf.for_ b ~lb:(Op.result1 lb) ~ub:(Op.result1 ub)
            ~step:(Op.result1 lb) (fun _iv _ -> [ Ftn_dialects.Scf.yield () ])
        in
        roundtrip (Op.module_op [ lb; ub; loop ]));
    tc "attributes round-trip" (fun () ->
        let op =
          Op.make "test.attrs"
            ~attrs:
              [
                ("i", Attr.i32 (-3));
                ("f", Attr.f32 2.5);
                ("s", Attr.String "hello world");
                ("sym", Attr.Symbol "foo");
                ("b", Attr.Bool true);
                ("arr", Attr.Array [ Attr.i64 1; Attr.String "x" ]);
                ("ty", Attr.Type (Types.memref_static [ 8 ] Types.F64));
              ]
        in
        roundtrip (Op.module_op [ op ]));
    tc "float attr precision survives" (fun () ->
        let x = 0.1 +. 0.2 in
        let op = Op.make "test.f" ~attrs:[ ("v", Attr.f64 x) ] in
        let text = Printer.to_string (Op.module_op [ op ]) in
        let m = Ir_parser.parse_module text in
        let reparsed = List.hd (Op.module_body m) in
        match Op.find_attr reparsed "v" with
        | Some (Attr.Float (y, _)) ->
          check (Alcotest.float 0.0) "exact" x y
        | _ -> Alcotest.fail "float attr lost");
    tc "parse errors carry position" (fun () ->
        (try
           ignore (Ir_parser.parse_ops "\"unclosed(");
           Alcotest.fail "expected parse error"
         with Ir_parser.Parse_error (_, pos) ->
           check Alcotest.bool "position sane" true (pos >= 0)));
    tc "multi-block CFG regions round-trip" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b Types.I64 in
        let iv = Builder.fresh b Types.I64 in
        let entry =
          Op.block ~label:"entry" ~args:[ arg ]
            [ Ftn_dialects.Llvm_d.br ~dest:"loop" ~operands:[ arg ] () ]
        in
        let cmp = Ftn_dialects.Llvm_d.icmp b "slt" iv arg in
        let loop_blk =
          Op.block ~label:"loop" ~args:[ iv ]
            [ cmp;
              Ftn_dialects.Llvm_d.cond_br ~cond:(Op.result1 cmp)
                ~true_dest:"loop" ~true_operands:[ iv ] ~false_dest:"exit" () ]
        in
        let exit_blk =
          Op.block ~label:"exit" [ Ftn_dialects.Llvm_d.return () ]
        in
        let fn =
          Ftn_dialects.Llvm_d.func ~sym_name:"f"
            ~blocks:[ entry; loop_blk; exit_blk ]
            ~fn_ty:(Types.Func ([ Types.I64 ], []))
            ()
        in
        roundtrip (Op.module_op [ fn ]));
    tc "empty regions round-trip" (fun () ->
        let b = Builder.create () in
        let kc =
          Ftn_dialects.Device.kernel_create b ~args:[] ~device_function:"k" ()
        in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ kc; Ftn_dialects.Func_d.return () ]
        in
        roundtrip (Op.module_op [ fn ]));
    tc "nested modules round-trip" (fun () ->
        let inner = Ftn_dialects.Builtin.device_module [] in
        roundtrip (Op.module_op [ inner ]));
    tc "parses paper Listing 2 style text" (fun () ->
        let text =
          {|"builtin.module"() ({
 ^bb0():
  %1 = "device.alloc"() <{name = "a", memory_space = 1 : i32}> : () -> (memref<100xf64, 1 : i32>)
  "device.data_acquire"() <{name = "a", memory_space = 1 : i32}> : () -> ()
 }) : () -> ()|}
        in
        let m = Ir_parser.parse_module text in
        check Alcotest.int "two ops" 2 (List.length (Op.module_body m)));
  ]

(* --- verifier --- *)

let verifier_tests =
  [
    tc "valid module passes" (fun () ->
        let b = Builder.create () in
        let _, _, add = mk_add b in
        (* operands are free at module level: wrap in a func *)
        let x = Op.operand add 0 and y = Op.operand add 1 in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[ x; y ] ~result_tys:[]
            [ add; Ftn_dialects.Func_d.return () ]
        in
        check Alcotest.int "no diags" 0
          (List.length (Verifier.verify (Op.module_op [ fn ]))));
    tc "use before def is reported" (fun () ->
        let b = Builder.create () in
        let ghost = Builder.fresh b Types.I32 in
        let use = Op.make "test.use" ~operands:[ ghost ] in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ use; Ftn_dialects.Func_d.return () ]
        in
        check Alcotest.bool "diag found" true
          (Verifier.verify (Op.module_op [ fn ]) <> []));
    tc "double definition is reported" (fun () ->
        let b = Builder.create () in
        let v = Builder.fresh b Types.I32 in
        let c1 = Op.make "arith.constant" ~results:[ v ] ~attrs:[ ("value", Attr.i32 0) ] in
        let c2 = Op.make "arith.constant" ~results:[ v ] ~attrs:[ ("value", Attr.i32 1) ] in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ c1; c2; Ftn_dialects.Func_d.return () ]
        in
        check Alcotest.bool "diag found" true
          (Verifier.verify (Op.module_op [ fn ]) <> []));
    tc "registered op checks fire" (fun () ->
        Ftn_dialects.Registry.register_all ();
        let bad = Op.make "arith.constant" in
        (* no results, no value attr *)
        check Alcotest.bool "diag found" true
          (Verifier.verify (Op.module_op [ bad ]) <> []));
    tc "isolated regions reject outer values" (fun () ->
        let b = Builder.create () in
        let outer = Builder.fresh b Types.I32 in
        let c =
          Op.make "arith.constant" ~results:[ outer ]
            ~attrs:[ ("value", Attr.i32 0) ]
        in
        let use = Op.make "test.use" ~operands:[ outer ] in
        let inner_fn =
          Ftn_dialects.Func_d.func ~sym_name:"g" ~args:[] ~result_tys:[]
            [ use; Ftn_dialects.Func_d.return () ]
        in
        let outer_fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ c; Ftn_dialects.Func_d.return () ]
        in
        check Alcotest.bool "diag found" true
          (Verifier.verify (Op.module_op [ outer_fn; inner_fn ]) <> []));
    tc "strict mode flags unregistered ops" (fun () ->
        let op = Op.make "nonexistent.op" in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ op; Ftn_dialects.Func_d.return () ]
        in
        let m = Op.module_op [ fn ] in
        check Alcotest.bool "lenient ok" true (Verifier.is_valid m);
        check Alcotest.bool "strict flags" false (Verifier.is_valid ~strict:true m));
  ]

(* --- rewrite driver --- *)

let rewrite_tests =
  let both_drivers name f =
    [
      tc (name ^ " (worklist)") (fun () -> f Rewrite.Worklist);
      tc (name ^ " (sweep)") (fun () -> f Rewrite.Sweep);
    ]
  in
  both_drivers "pattern replaces op and redirects uses" (fun driver ->
      let b = Builder.create () in
      let x = Builder.fresh b Types.I32 in
      let dbl = Op.make "test.double" ~operands:[ x ]
          ~results:[ Builder.fresh b Types.I32 ] in
      let use = Op.make "test.use" ~operands:[ Op.result1 dbl ] in
      let fn =
        Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[ x ] ~result_tys:[]
          [ dbl; use; Ftn_dialects.Func_d.return () ]
      in
      let pat =
        Rewrite.pattern ~roots:[ "test.double" ] "double-to-add"
          (fun ctx op ->
            let a = Op.operand op 0 in
            let add = Ftn_dialects.Arith.addi (Rewrite.builder ctx) a a in
            Some
              (Rewrite.replace_with
                 ~replacements:[ (Op.result1 op, Op.result1 add) ]
                 [ add ]))
      in
      let m = Rewrite.apply ~driver [ pat ] (Op.module_op [ fn ]) in
      check Alcotest.int "no doubles left" 0
        (Op.count (fun o -> Op.name o = "test.double") m);
      check Alcotest.int "one add" 1
        (Op.count (fun o -> Op.name o = "arith.addi") m);
      (* the use now points at the add's result *)
      let add = List.hd (Op.collect (fun o -> Op.name o = "arith.addi") m) in
      let use = List.hd (Op.collect (fun o -> Op.name o = "test.use") m) in
      check Alcotest.bool "use redirected" true
        (Value.equal (Op.result1 add) (Op.operand use 0)))
  @ both_drivers "erase drops dead ops" (fun driver ->
        let marker = Op.make "test.dead" in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ marker; Ftn_dialects.Func_d.return () ]
        in
        let pat =
          Rewrite.pattern "drop" (fun _ op ->
              if Op.name op = "test.dead" then Some Rewrite.erase else None)
        in
        let m = Rewrite.apply ~driver [ pat ] (Op.module_op [ fn ]) in
        check Alcotest.int "gone" 0
          (Op.count (fun o -> Op.name o = "test.dead") m))
  @ both_drivers "fixpoint terminates on cyclic-looking rewrites"
      (fun driver ->
        let count = ref 0 in
        let pat =
          Rewrite.pattern ~roots:[ "test.spin" ] "spin" (fun _ _ ->
              if !count < 1000 then begin
                incr count;
                Some (Rewrite.replace_with [ Op.make "test.spin" ])
              end
              else None)
        in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ Op.make "test.spin"; Ftn_dialects.Func_d.return () ]
        in
        let m =
          Rewrite.apply ~driver ~max_iterations:5 [ pat ] (Op.module_op [ fn ])
        in
        (* the worklist budget is max_iterations * (op count + 16), the
           sweep budget max_iterations sweeps: both must stop well short of
           the pattern's own 1000-firing fuse *)
        check Alcotest.bool "bounded" true (!count <= 200);
        ignore m)
  @ both_drivers "substitution cycle raises a located diagnostic"
      (fun driver ->
        (* two patterns that replace each other's results: a -> b, b -> a *)
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        let a_op = Op.make "test.a" ~operands:[ x ]
            ~results:[ Builder.fresh b Types.I32 ] in
        let b_op = Op.make "test.b" ~operands:[ Op.result1 a_op ]
            ~results:[ Builder.fresh b Types.I32 ] in
        let use = Op.make "test.use" ~operands:[ Op.result1 b_op ] in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[ x ] ~result_tys:[]
            [ a_op; b_op; use; Ftn_dialects.Func_d.return () ]
        in
        let swap root other =
          Rewrite.pattern ~roots:[ root ] (root ^ "-to-" ^ other)
            (fun _ op ->
              Some
                (Rewrite.replace_with
                   ~replacements:
                     [ (Op.result1 op, Op.result1 (if root = "test.a" then b_op else a_op)) ]
                   [ { op with Op.name = other } ]))
        in
        match
          Rewrite.apply ~driver
            [ swap "test.a" "test.b'"; swap "test.b" "test.a'" ]
            (Op.module_op [ fn ])
        with
        | _ -> Alcotest.fail "expected a substitution-cycle diagnostic"
        | exception Ftn_diag.Diag.Diag_failure (d :: _) ->
          let msg = d.Ftn_diag.Diag.message in
          let contains sub =
            let n = String.length sub and m = String.length msg in
            let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
            go 0
          in
          check Alcotest.bool "mentions the cycle" true
            (contains "substitution cycle"))
  @ both_drivers "fold hook folds constants and erases dead ops"
      (fun driver ->
        let b = Builder.create () in
        let two = Ftn_dialects.Arith.const_i32 b 2 in
        let three = Ftn_dialects.Arith.const_i32 b 3 in
        let sum =
          Ftn_dialects.Arith.addi b (Op.result1 two) (Op.result1 three)
        in
        let use = Op.make "test.use" ~operands:[ Op.result1 sum ] in
        let fn =
          Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
            [ two; three; sum; use; Ftn_dialects.Func_d.return () ]
        in
        let fold ctx op =
          if Op.name op = "arith.addi" then
            match
              ( Rewrite.const_of ctx (Op.operand op 0),
                Rewrite.const_of ctx (Op.operand op 1) )
            with
            | Some (Attr.Int (x, ty)), Some (Attr.Int (y, _)) ->
              Some [ Rewrite.To_constant (Attr.Int (x + y, ty)) ]
            | _ -> None
          else None
        in
        let config = { Rewrite.default_config with Rewrite.fold = Some fold } in
        let m, stats =
          Rewrite.apply_with_stats ~driver ~config [] (Op.module_op [ fn ])
        in
        check Alcotest.int "no add left" 0
          (Op.count (fun o -> Op.name o = "arith.addi") m);
        (* the sum op folded to a constant reusing its result value, and
           the now-dead 2 and 3 constants were erased by the driver *)
        check Alcotest.int "one constant left" 1
          (Op.count (fun o -> Op.name o = "arith.constant") m);
        let konst =
          List.hd (Op.collect (fun o -> Op.name o = "arith.constant") m)
        in
        check Alcotest.bool "use kept its value" true
          (Value.equal (Op.result1 konst) (Op.result1 sum));
        check Alcotest.bool "folded" true (stats.Rewrite.ops_folded >= 1);
        check Alcotest.bool "erased" true (stats.Rewrite.ops_erased >= 2))
  @ [
      tc "root-indexed patterns only visit matching ops" (fun () ->
          let fired_on = ref [] in
          let pat =
            Rewrite.pattern ~roots:[ "test.only" ] "rooted" (fun _ op ->
                fired_on := Op.name op :: !fired_on;
                None)
          in
          let fn =
            Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
              [
                Op.make "test.only"; Op.make "test.other";
                Ftn_dialects.Func_d.return ();
              ]
          in
          ignore (Rewrite.apply [ pat ] (Op.module_op [ fn ]));
          check (Alcotest.list Alcotest.string) "only the rooted op"
            [ "test.only" ] !fired_on);
      tc "in-queue flag coalesces re-enqueues on a diamond def/use graph"
        (fun () ->
          (* a (generalised) diamond: one source value fanning out to M
             mid ops whose results all join in a single user. Renaming
             each mid op re-enqueues the join; without the in-queue flag
             the join would be pushed once per mid and visited up to M
             extra times. With coalescing the total visit count is
             exactly: initial ops (func + src + M mids + join + return =
             M+4) plus the M renamed replacement ops plus one revisit of
             the source (each kill re-enqueues the producer for the
             dead-code check; those M re-enqueues coalesce too) — the
             join's M re-enqueues collapse into its single queued entry. *)
          let m_mids = 8 in
          let b = Builder.create () in
          let src = Builder.op1 b "test.src" Types.I32 in
          let mids =
            List.init m_mids (fun _ ->
                Builder.op1 b "test.mid" ~operands:[ Op.result1 src ]
                  Types.I32)
          in
          let join =
            Op.make "test.join" ~operands:(List.map Op.result1 mids)
          in
          let fn =
            Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
              ((src :: mids) @ [ join; Ftn_dialects.Func_d.return () ])
          in
          let rename =
            Rewrite.pattern ~roots:[ "test.mid" ] "mid->done" (fun _ op ->
                Some (Rewrite.replace_with [ { op with Op.name = "test.done" } ]))
          in
          let _, stats =
            Rewrite.apply_with_stats ~driver:Rewrite.Worklist [ rename ]
              (Op.module_op [ fn ])
          in
          check Alcotest.int "patterns fired once per mid" m_mids
            stats.Rewrite.patterns_fired;
          check Alcotest.int "visits coalesced"
            ((2 * m_mids) + 5)
            stats.Rewrite.ops_visited);
      tc "pattern stats survive a 4-domain hammer without lost updates"
        (fun () ->
          let saved = Ftn_obs.Profile.enabled () in
          Ftn_obs.Profile.set_enabled true;
          Fun.protect
            ~finally:(fun () -> Ftn_obs.Profile.set_enabled saved)
            (fun () ->
              Rewrite.reset_pattern_profile ();
              let iters = 200 in
              (* each apply attempts the rooted pattern exactly once (one
                 test.hammer op per module, never fires) *)
              let work () =
                let pat =
                  Rewrite.pattern ~roots:[ "test.hammer" ] "hammered"
                    (fun _ _ -> None)
                in
                for _ = 1 to iters do
                  let fn =
                    Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[]
                      ~result_tys:[]
                      [ Op.make "test.hammer"; Ftn_dialects.Func_d.return () ]
                  in
                  ignore (Rewrite.apply [ pat ] (Op.module_op [ fn ]))
                done
              in
              let workers = List.init 3 (fun _ -> Domain.spawn work) in
              work ();
              List.iter Domain.join workers;
              let attempts =
                List.fold_left
                  (fun acc (name, attempts, _, _) ->
                    if String.equal name "hammered" then acc + attempts
                    else acc)
                  0
                  (Rewrite.pattern_profile ())
              in
              check Alcotest.int "no lost attempts" (4 * iters) attempts));
      tc "worklist and sweep drivers agree on the fixpoint" (fun () ->
          (* a -> b -> c rename chain with no fresh values: the printed
             fixpoints must match byte for byte *)
          let rename from into =
            Rewrite.pattern ~roots:[ from ] (from ^ "->" ^ into) (fun _ op ->
                Some (Rewrite.replace_with [ { op with Op.name = into } ]))
          in
          let pats = [ rename "test.a" "test.b"; rename "test.b" "test.c" ] in
          let fn =
            Ftn_dialects.Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
              [
                Op.make "test.a"; Op.make "test.b";
                Ftn_dialects.Func_d.return ();
              ]
          in
          let m = Op.module_op [ fn ] in
          let wl = Rewrite.apply ~driver:Rewrite.Worklist pats m in
          let sw = Rewrite.apply ~driver:Rewrite.Sweep pats m in
          check Alcotest.string "same fixpoint"
            (Format.asprintf "%a" Printer.pp sw)
            (Format.asprintf "%a" Printer.pp wl));
    ]

(* --- pass manager --- *)

let pass_tests =
  [
    tc "pipeline runs passes in order and records stages" (fun () ->
        let order = ref [] in
        let mk name = Pass.make name (fun m -> order := name :: !order; m) in
        let m = Op.module_op [] in
        let _, stages = Pass.run_pipeline [ mk "a"; mk "b" ] m in
        check (Alcotest.list Alcotest.string) "order" [ "b"; "a" ] !order;
        check (Alcotest.list Alcotest.string) "stages"
          [ "input"; "a"; "b" ]
          (List.map (fun s -> s.Pass.stage_name) stages));
    tc "verify_between catches breakage" (fun () ->
        let b = Builder.create () in
        let breaker =
          Pass.make "break" (fun m ->
              let ghost = Builder.fresh b Types.I32 in
              let bad = Op.make "test.use" ~operands:[ ghost ] in
              Op.with_module_body m [ bad ])
        in
        (try
           ignore
             (Pass.run_pipeline ~verify_between:true [ breaker ] (Op.module_op []));
           Alcotest.fail "expected verification failure"
         with Ftn_diag.Diag.Diag_failure (d :: _) ->
           (* the diagnostic names the pass that broke the IR *)
           check Alcotest.bool "pass context" true
             (List.exists
                (fun (_, m) ->
                  let needle = "after pass 'break'" in
                  let nl = String.length needle and hl = String.length m in
                  let rec go i =
                    i + nl <= hl && (String.sub m i nl = needle || go (i + 1))
                  in
                  go 0)
                d.Ftn_diag.Diag.notes)));
    tc "op counting" (fun () ->
        let b = Builder.create () in
        let c = Ftn_dialects.Arith.const_i32 b 1 in
        check Alcotest.int "count" 2 (Pass.count_ops (Op.module_op [ c ])));
  ]

let () =
  Ftn_dialects.Registry.register_all ();
  Alcotest.run "ir"
    [
      ("types", types_tests);
      ("attrs", attr_tests);
      ("ops", op_tests);
      ("printer-parser", parser_tests);
      ("verifier", verifier_tests);
      ("rewrite", rewrite_tests);
      ("pass", pass_tests);
    ]
