(* Tests for the observability subsystem: span nesting over both clocks,
   the metrics registry, logger capture, and the Chrome trace-event
   exporter (structure and ordering, never absolute timestamps). *)

open Ftn_obs

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let span_tests =
  [
    tc "wall spans nest parent/child" (fun () ->
        let c = Span.create () in
        Span.with_collector c (fun () ->
            Span.with_span ~name:"outer" (fun () ->
                Span.with_span ~name:"inner" (fun () -> ());
                Span.with_span ~name:"inner2" (fun () -> ())));
        match Span.spans c with
        | [ outer; inner; inner2 ] ->
          check Alcotest.string "outer name" "outer" outer.Span.name;
          check Alcotest.(option int) "outer is root" None outer.Span.parent;
          check Alcotest.(option int) "inner child of outer"
            (Some outer.Span.id) inner.Span.parent;
          check Alcotest.(option int) "inner2 child of outer"
            (Some outer.Span.id) inner2.Span.parent;
          check Alcotest.bool "outer covers inner" true
            (outer.Span.dur_s >= inner.Span.dur_s)
        | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans));
    tc "spans close on exception" (fun () ->
        let c = Span.create () in
        (try
           Span.with_collector c (fun () ->
               Span.with_span ~name:"boom" (fun () -> failwith "x"))
         with Failure _ -> ());
        (match Span.spans c with
        | [ sp ] -> check Alcotest.bool "closed" true (sp.Span.dur_s >= 0.0)
        | _ -> Alcotest.fail "expected 1 span");
        (* The stack unwound: a later span is again a root. *)
        Span.with_collector c (fun () ->
            Span.with_span ~name:"after" (fun () -> ()));
        match Span.spans c with
        | [ _; after ] ->
          check Alcotest.(option int) "root again" None after.Span.parent
        | _ -> Alcotest.fail "expected 2 spans");
    tc "sim spans carry explicit timeline positions" (fun () ->
        let c = Span.create () in
        let _ =
          Span.record_sim ~collector:c ~name:"k1" ~start_s:0.0 ~dur_s:2e-6 ()
        in
        let _ =
          Span.record_sim ~collector:c
            ~attrs:[ ("track", "transfer") ]
            ~name:"t1" ~start_s:2e-6 ~dur_s:1e-6 ()
        in
        match Span.spans c with
        | [ k1; t1 ] ->
          check Alcotest.bool "sim clock" true (k1.Span.clock = Span.Sim);
          check (Alcotest.float 1e-12) "k1 start" 0.0 k1.Span.start_s;
          check (Alcotest.float 1e-12) "t1 start" 2e-6 t1.Span.start_s;
          check Alcotest.(option string) "attr" (Some "transfer")
            (Span.attr t1 "track")
        | _ -> Alcotest.fail "expected 2 spans");
    tc "set_attr replaces existing keys" (fun () ->
        let c = Span.create () in
        Span.with_collector c (fun () ->
            Span.with_span_sp ~name:"s" (fun sp ->
                Span.set_attr sp ~key:"k" "1";
                Span.set_attr sp ~key:"k" "2"));
        match Span.spans c with
        | [ sp ] ->
          check Alcotest.(option string) "last write wins" (Some "2")
            (Span.attr sp "k");
          check Alcotest.int "no duplicate" 1 (List.length sp.Span.attrs)
        | _ -> Alcotest.fail "expected 1 span");
  ]

let metrics_tests =
  [
    tc "counters accumulate" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r "a.count";
        Metrics.incr ~registry:r ~by:41 "a.count";
        check Alcotest.int "sum" 42 (Metrics.counter_value ~registry:r "a.count"));
    tc "gauges keep the last value" (fun () ->
        let r = Metrics.create () in
        Metrics.set_gauge ~registry:r "g" 1.5;
        Metrics.set_gauge ~registry:r "g" 2.5;
        match Metrics.find ~registry:r "g" with
        | Some (Metrics.Gauge_v v) -> check (Alcotest.float 0.0) "last" 2.5 v
        | _ -> Alcotest.fail "expected gauge");
    tc "histograms summarise" (fun () ->
        let r = Metrics.create () in
        List.iter (Metrics.observe ~registry:r "h") [ 3.0; 1.0; 2.0 ];
        match Metrics.find ~registry:r "h" with
        | Some (Metrics.Histogram_v { count; sum; min_v; max_v }) ->
          check Alcotest.int "count" 3 count;
          check (Alcotest.float 1e-9) "sum" 6.0 sum;
          check (Alcotest.float 0.0) "min" 1.0 min_v;
          check (Alcotest.float 0.0) "max" 3.0 max_v
        | _ -> Alcotest.fail "expected histogram");
    tc "kind reuse is rejected" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r "m";
        Alcotest.check_raises "mismatch"
          (Metrics.Kind_mismatch
             "metric \"m\" already registered with another kind") (fun () ->
            Metrics.set_gauge ~registry:r "m" 1.0));
    tc "snapshot is sorted and json serialises" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r "z.last";
        Metrics.incr ~registry:r "a.first";
        Metrics.set_gauge ~registry:r "m.mid" 0.5;
        let names = List.map fst (Metrics.snapshot ~registry:r ()) in
        check
          Alcotest.(list string)
          "sorted"
          [ "a.first"; "m.mid"; "z.last" ]
          names;
        let j = Json.to_string (Metrics.to_json ~registry:r ()) in
        check Alcotest.bool "counter json" true
          (Astring_like.contains j "\"a.first\":{\"type\":\"counter\",\"value\":1}"));
  ]

let log_tests =
  [
    tc "capture records level and message" (fun () ->
        let (), msgs =
          Log.with_capture (fun () ->
              Log.infof "hello %d" 42;
              Log.errorf "bad")
        in
        check Alcotest.int "two messages" 2 (List.length msgs);
        (match msgs with
        | [ (l1, m1); (l2, m2) ] ->
          check Alcotest.bool "info" true (l1 = Log.Info);
          check Alcotest.string "formatted" "hello 42" m1;
          check Alcotest.bool "error" true (l2 = Log.Error);
          check Alcotest.string "msg" "bad" m2
        | _ -> Alcotest.fail "unexpected capture"));
    tc "messages below the level are dropped" (fun () ->
        let (), msgs =
          Log.with_capture ~level:Log.Warn (fun () ->
              Log.debugf "quiet";
              Log.infof "quiet too";
              Log.warnf "loud")
        in
        check Alcotest.int "one message" 1 (List.length msgs));
    tc "capture restores the previous sink and level" (fun () ->
        let before = Log.level () in
        let (), _ = Log.with_capture ~level:Log.Debug (fun () -> ()) in
        check Alcotest.bool "level restored" true (Log.level () = before));
    tc "level round-trips through strings" (fun () ->
        List.iter
          (fun l ->
            check Alcotest.bool "round trip" true
              (Log.level_of_string (Log.string_of_level l) = Some l))
          [ Log.Debug; Log.Info; Log.Warn; Log.Error ]);
  ]

(* A deterministic collector: one wall span (compile work) and a sim
   timeline with a transfer, a kernel and its overhead. *)
let golden_collector () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~name:"compile" (fun () ->
          Span.with_span ~name:"pass.canonicalize" (fun () -> ())));
  let _ =
    Span.record_sim ~collector:c
      ~attrs:[ ("track", "transfer"); ("direction", "h2d"); ("bytes", "64") ]
      ~name:"h2d:x" ~start_s:0.0 ~dur_s:1e-6 ()
  in
  let _ =
    Span.record_sim ~collector:c
      ~attrs:[ ("track", "kernel"); ("kernel", "k") ]
      ~name:"k" ~start_s:1e-6 ~dur_s:5e-6 ()
  in
  let _ =
    Span.record_sim ~collector:c
      ~attrs:[ ("track", "transfer"); ("direction", "d2h"); ("bytes", "32") ]
      ~name:"d2h:y" ~start_s:6e-6 ~dur_s:1e-6 ()
  in
  c

let chrome_tests =
  [
    tc "stable event names in order" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        (* Golden-ish: assert the event-name sequence, not timestamps. *)
        let names = [ "compile"; "pass.canonicalize"; "h2d:x"; "k"; "d2h:y" ] in
        let positions =
          List.map
            (fun n ->
              let needle = "\"name\":\"" ^ n ^ "\"" in
              check Alcotest.bool ("has " ^ n) true (Astring_like.contains j needle);
              let rec find i =
                if String.length needle + i > String.length j then -1
                else if String.sub j i (String.length needle) = needle then i
                else find (i + 1)
              in
              find 0)
            names
        in
        check Alcotest.bool "ordered" true
          (List.sort compare positions = positions));
    tc "sim timestamps are relative microseconds" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        check Alcotest.bool "kernel at 1us" true
          (Astring_like.contains j
             "\"name\":\"k\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":1.0,\"dur\":5.0"));
    tc "wall timestamps are normalised, never absolute" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        (* First wall span starts at ts 0 regardless of wall-clock epoch. *)
        check Alcotest.bool "compile at 0" true
          (Astring_like.contains j
             "\"name\":\"compile\",\"cat\":\"wall\",\"ph\":\"X\",\"ts\":0.0"));
    tc "tracks and bytes counter" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        List.iter
          (fun needle -> check Alcotest.bool needle true (Astring_like.contains j needle))
          [
            "\"name\":\"device.kernels\"";
            "\"name\":\"device.transfers\"";
            "\"name\":\"device.bytes_transferred\",\"ph\":\"C\"";
            "{\"total\":64,\"h2d\":64,\"d2h\":0}";
            "{\"total\":96,\"h2d\":64,\"d2h\":32}";
          ]);
    tc "metrics embed under a metrics key" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r ~by:7 "interp.steps";
        let j = Chrome_trace.to_string ~metrics:r (golden_collector ()) in
        check Alcotest.bool "metrics json" true
          (Astring_like.contains j
             "\"metrics\":{\"interp.steps\":{\"type\":\"counter\",\"value\":7}}"));
  ]

(* End-to-end: a compiled-and-executed SAXPY reports into one collector;
   the executor's result record must agree with the span timeline. *)
let e2e_tests =
  [
    tc "pipeline reports spans end-to-end" (fun () ->
        let c = Span.create () in
        let run =
          Span.with_collector c (fun () ->
              Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n:64))
        in
        let spans = Span.spans c in
        let with_name prefix =
          List.filter
            (fun (sp : Span.span) ->
              String.length sp.Span.name >= String.length prefix
              && String.sub sp.Span.name 0 (String.length prefix) = prefix)
            spans
        in
        check Alcotest.bool "has pass spans" true
          (List.length (with_name "pass.") >= 5);
        check Alcotest.bool "has synth span" true
          (with_name "synth.vpp" <> []);
        let sim track =
          List.filter
            (fun (sp : Span.span) ->
              sp.Span.clock = Span.Sim && Span.attr sp "track" = Some track)
            spans
        in
        let exec = run.Core.Run.exec in
        check Alcotest.int "one kernel span"
          exec.Ftn_runtime.Executor.kernel_launches
          (List.length (sim "kernel"));
        let sum track =
          List.fold_left (fun acc sp -> acc +. sp.Span.dur_s) 0.0 (sim track)
        in
        check (Alcotest.float 0.0) "kernel time from spans"
          exec.Ftn_runtime.Executor.kernel_time_s (sum "kernel");
        check (Alcotest.float 0.0) "transfer time from spans"
          exec.Ftn_runtime.Executor.transfer_time_s (sum "transfer");
        check (Alcotest.float 0.0) "overhead time from spans"
          exec.Ftn_runtime.Executor.overhead_time_s (sum "overhead"));
    tc "transfer trace events name the moved array" (fun () ->
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n:32) in
        let transfers =
          List.filter_map
            (function
              | Ftn_runtime.Trace.Transfer { name; _ } -> Some name
              | _ -> None)
            (Ftn_runtime.Trace.events
               run.Core.Run.exec.Ftn_runtime.Executor.trace)
        in
        check Alcotest.bool "has transfers" true (transfers <> []);
        List.iter
          (fun n -> check Alcotest.bool "named" true (n <> ""))
          transfers);
  ]

let () =
  Alcotest.run "obs"
    [
      ("spans", span_tests);
      ("metrics", metrics_tests);
      ("log", log_tests);
      ("chrome-trace", chrome_tests);
      ("e2e", e2e_tests);
    ]
