(* Tests for the observability subsystem: span nesting over both clocks,
   the metrics registry, logger capture, and the Chrome trace-event
   exporter (structure and ordering, never absolute timestamps). *)

open Ftn_obs

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let span_tests =
  [
    tc "wall spans nest parent/child" (fun () ->
        let c = Span.create () in
        Span.with_collector c (fun () ->
            Span.with_span ~name:"outer" (fun () ->
                Span.with_span ~name:"inner" (fun () -> ());
                Span.with_span ~name:"inner2" (fun () -> ())));
        match Span.spans c with
        | [ outer; inner; inner2 ] ->
          check Alcotest.string "outer name" "outer" outer.Span.name;
          check Alcotest.(option int) "outer is root" None outer.Span.parent;
          check Alcotest.(option int) "inner child of outer"
            (Some outer.Span.id) inner.Span.parent;
          check Alcotest.(option int) "inner2 child of outer"
            (Some outer.Span.id) inner2.Span.parent;
          check Alcotest.bool "outer covers inner" true
            (outer.Span.dur_s >= inner.Span.dur_s)
        | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans));
    tc "spans close on exception" (fun () ->
        let c = Span.create () in
        (try
           Span.with_collector c (fun () ->
               Span.with_span ~name:"boom" (fun () -> failwith "x"))
         with Failure _ -> ());
        (match Span.spans c with
        | [ sp ] -> check Alcotest.bool "closed" true (sp.Span.dur_s >= 0.0)
        | _ -> Alcotest.fail "expected 1 span");
        (* The stack unwound: a later span is again a root. *)
        Span.with_collector c (fun () ->
            Span.with_span ~name:"after" (fun () -> ()));
        match Span.spans c with
        | [ _; after ] ->
          check Alcotest.(option int) "root again" None after.Span.parent
        | _ -> Alcotest.fail "expected 2 spans");
    tc "sim spans carry explicit timeline positions" (fun () ->
        let c = Span.create () in
        let _ =
          Span.record_sim ~collector:c ~name:"k1" ~start_s:0.0 ~dur_s:2e-6 ()
        in
        let _ =
          Span.record_sim ~collector:c
            ~attrs:[ ("track", "transfer") ]
            ~name:"t1" ~start_s:2e-6 ~dur_s:1e-6 ()
        in
        match Span.spans c with
        | [ k1; t1 ] ->
          check Alcotest.bool "sim clock" true (k1.Span.clock = Span.Sim);
          check (Alcotest.float 1e-12) "k1 start" 0.0 k1.Span.start_s;
          check (Alcotest.float 1e-12) "t1 start" 2e-6 t1.Span.start_s;
          check Alcotest.(option string) "attr" (Some "transfer")
            (Span.attr t1 "track")
        | _ -> Alcotest.fail "expected 2 spans");
    tc "set_attr replaces existing keys" (fun () ->
        let c = Span.create () in
        Span.with_collector c (fun () ->
            Span.with_span_sp ~name:"s" (fun sp ->
                Span.set_attr sp ~key:"k" "1";
                Span.set_attr sp ~key:"k" "2"));
        match Span.spans c with
        | [ sp ] ->
          check Alcotest.(option string) "last write wins" (Some "2")
            (Span.attr sp "k");
          check Alcotest.int "no duplicate" 1 (List.length sp.Span.attrs)
        | _ -> Alcotest.fail "expected 1 span");
  ]

let metrics_tests =
  [
    tc "counters accumulate" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r "a.count";
        Metrics.incr ~registry:r ~by:41 "a.count";
        check Alcotest.int "sum" 42 (Metrics.counter_value ~registry:r "a.count"));
    tc "gauges keep the last value" (fun () ->
        let r = Metrics.create () in
        Metrics.set_gauge ~registry:r "g" 1.5;
        Metrics.set_gauge ~registry:r "g" 2.5;
        match Metrics.find ~registry:r "g" with
        | Some (Metrics.Gauge_v v) -> check (Alcotest.float 0.0) "last" 2.5 v
        | _ -> Alcotest.fail "expected gauge");
    tc "histograms summarise" (fun () ->
        let r = Metrics.create () in
        List.iter (Metrics.observe ~registry:r "h") [ 3.0; 1.0; 2.0 ];
        match Metrics.find ~registry:r "h" with
        | Some (Metrics.Histogram_v { count; sum; min_v; max_v; _ }) ->
          check Alcotest.int "count" 3 count;
          check (Alcotest.float 1e-9) "sum" 6.0 sum;
          check (Alcotest.float 0.0) "min" 1.0 min_v;
          check (Alcotest.float 0.0) "max" 3.0 max_v
        | _ -> Alcotest.fail "expected histogram");
    tc "kind reuse is rejected" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r "m";
        Alcotest.check_raises "mismatch"
          (Metrics.Kind_mismatch
             "metric \"m\" already registered with another kind") (fun () ->
            Metrics.set_gauge ~registry:r "m" 1.0));
    tc "snapshot is sorted and json serialises" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r "z.last";
        Metrics.incr ~registry:r "a.first";
        Metrics.set_gauge ~registry:r "m.mid" 0.5;
        let names = List.map fst (Metrics.snapshot ~registry:r ()) in
        check
          Alcotest.(list string)
          "sorted"
          [ "a.first"; "m.mid"; "z.last" ]
          names;
        let j = Json.to_string (Metrics.to_json ~registry:r ()) in
        check Alcotest.bool "counter json" true
          (Astring_like.contains j "\"a.first\":{\"type\":\"counter\",\"value\":1}"));
  ]

let domain_tests =
  [
    tc "metrics registry survives a 4-domain hammer without lost updates"
      (fun () ->
        let r = Metrics.create () in
        let iters = 10_000 in
        let work () =
          for i = 1 to iters do
            Metrics.incr ~registry:r "hammer.count";
            Metrics.observe ~registry:r "hammer.hist" (float_of_int i);
            Metrics.set_gauge ~registry:r "hammer.gauge" (float_of_int i)
          done
        in
        let workers = List.init 3 (fun _ -> Domain.spawn work) in
        work ();
        List.iter Domain.join workers;
        check Alcotest.int "no lost increments" (4 * iters)
          (Metrics.counter_value ~registry:r "hammer.count");
        (match Metrics.find ~registry:r "hammer.hist" with
        | Some (Metrics.Histogram_v { count; _ }) ->
          check Alcotest.int "no lost observations" (4 * iters) count
        | _ -> Alcotest.fail "expected histogram");
        match Metrics.find ~registry:r "hammer.gauge" with
        | Some (Metrics.Gauge_v v) ->
          check Alcotest.bool "gauge holds one of the written values" true
            (v >= 1.0 && v <= float_of_int iters)
        | _ -> Alcotest.fail "expected gauge");
    tc "merge_into from 4 domains loses nothing" (fun () ->
        let dst = Metrics.create () in
        let iters = 2_000 in
        let work () =
          let local = Metrics.create () in
          for _ = 1 to iters do
            Metrics.incr ~registry:local "merged.count"
          done;
          Metrics.merge_into ~src:local ~dst
        in
        let workers = List.init 3 (fun _ -> Domain.spawn work) in
        work ();
        List.iter Domain.join workers;
        check Alcotest.int "merged total" (4 * iters)
          (Metrics.counter_value ~registry:dst "merged.count"));
  ]

let log_tests =
  [
    tc "capture records level and message" (fun () ->
        let (), msgs =
          Log.with_capture (fun () ->
              Log.infof "hello %d" 42;
              Log.errorf "bad")
        in
        check Alcotest.int "two messages" 2 (List.length msgs);
        (match msgs with
        | [ (l1, m1); (l2, m2) ] ->
          check Alcotest.bool "info" true (l1 = Log.Info);
          check Alcotest.string "formatted" "hello 42" m1;
          check Alcotest.bool "error" true (l2 = Log.Error);
          check Alcotest.string "msg" "bad" m2
        | _ -> Alcotest.fail "unexpected capture"));
    tc "messages below the level are dropped" (fun () ->
        let (), msgs =
          Log.with_capture ~level:Log.Warn (fun () ->
              Log.debugf "quiet";
              Log.infof "quiet too";
              Log.warnf "loud")
        in
        check Alcotest.int "one message" 1 (List.length msgs));
    tc "capture restores the previous sink and level" (fun () ->
        let before = Log.level () in
        let (), _ = Log.with_capture ~level:Log.Debug (fun () -> ()) in
        check Alcotest.bool "level restored" true (Log.level () = before));
    tc "level round-trips through strings" (fun () ->
        List.iter
          (fun l ->
            check Alcotest.bool "round trip" true
              (Log.level_of_string (Log.string_of_level l) = Some l))
          [ Log.Debug; Log.Info; Log.Warn; Log.Error ]);
  ]

(* A deterministic collector: one wall span (compile work) and a sim
   timeline with a transfer, a kernel and its overhead. *)
let golden_collector () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~name:"compile" (fun () ->
          Span.with_span ~name:"pass.canonicalize" (fun () -> ())));
  let _ =
    Span.record_sim ~collector:c
      ~attrs:[ ("track", "transfer"); ("direction", "h2d"); ("bytes", "64") ]
      ~name:"h2d:x" ~start_s:0.0 ~dur_s:1e-6 ()
  in
  let _ =
    Span.record_sim ~collector:c
      ~attrs:[ ("track", "kernel"); ("kernel", "k") ]
      ~name:"k" ~start_s:1e-6 ~dur_s:5e-6 ()
  in
  let _ =
    Span.record_sim ~collector:c
      ~attrs:[ ("track", "transfer"); ("direction", "d2h"); ("bytes", "32") ]
      ~name:"d2h:y" ~start_s:6e-6 ~dur_s:1e-6 ()
  in
  c

let chrome_tests =
  [
    tc "stable event names in order" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        (* Golden-ish: assert the event-name sequence, not timestamps. *)
        let names = [ "compile"; "pass.canonicalize"; "h2d:x"; "k"; "d2h:y" ] in
        let positions =
          List.map
            (fun n ->
              let needle = "\"name\":\"" ^ n ^ "\"" in
              check Alcotest.bool ("has " ^ n) true (Astring_like.contains j needle);
              let rec find i =
                if String.length needle + i > String.length j then -1
                else if String.sub j i (String.length needle) = needle then i
                else find (i + 1)
              in
              find 0)
            names
        in
        check Alcotest.bool "ordered" true
          (List.sort compare positions = positions));
    tc "sim timestamps are relative microseconds" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        check Alcotest.bool "kernel at 1us" true
          (Astring_like.contains j
             "\"name\":\"k\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":1.0,\"dur\":5.0"));
    tc "wall timestamps are normalised, never absolute" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        (* First wall span starts at ts 0 regardless of wall-clock epoch. *)
        check Alcotest.bool "compile at 0" true
          (Astring_like.contains j
             "\"name\":\"compile\",\"cat\":\"wall\",\"ph\":\"X\",\"ts\":0.0"));
    tc "tracks and bytes counter" (fun () ->
        let j = Chrome_trace.to_string (golden_collector ()) in
        List.iter
          (fun needle -> check Alcotest.bool needle true (Astring_like.contains j needle))
          [
            "\"name\":\"device.kernels\"";
            "\"name\":\"device.transfers\"";
            "\"name\":\"device.bytes_transferred\",\"ph\":\"C\"";
            "{\"total\":64,\"h2d\":64,\"d2h\":0}";
            "{\"total\":96,\"h2d\":64,\"d2h\":32}";
          ]);
    tc "metrics embed under a metrics key" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r ~by:7 "interp.steps";
        let j = Chrome_trace.to_string ~metrics:r (golden_collector ()) in
        check Alcotest.bool "metrics json" true
          (Astring_like.contains j
             "\"metrics\":{\"interp.steps\":{\"type\":\"counter\",\"value\":7}}"));
  ]

(* End-to-end: a compiled-and-executed SAXPY reports into one collector;
   the executor's result record must agree with the span timeline. *)
let e2e_tests =
  [
    tc "pipeline reports spans end-to-end" (fun () ->
        let c = Span.create () in
        let run =
          Span.with_collector c (fun () ->
              Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n:64))
        in
        let spans = Span.spans c in
        let with_name prefix =
          List.filter
            (fun (sp : Span.span) ->
              String.length sp.Span.name >= String.length prefix
              && String.sub sp.Span.name 0 (String.length prefix) = prefix)
            spans
        in
        check Alcotest.bool "has pass spans" true
          (List.length (with_name "pass.") >= 5);
        check Alcotest.bool "has synth span" true
          (with_name "synth.vpp" <> []);
        let sim track =
          List.filter
            (fun (sp : Span.span) ->
              sp.Span.clock = Span.Sim && Span.attr sp "track" = Some track)
            spans
        in
        let exec = run.Core.Run.exec in
        check Alcotest.int "one kernel span"
          exec.Ftn_runtime.Executor.kernel_launches
          (List.length (sim "kernel"));
        let sum track =
          List.fold_left (fun acc sp -> acc +. sp.Span.dur_s) 0.0 (sim track)
        in
        check (Alcotest.float 0.0) "kernel time from spans"
          exec.Ftn_runtime.Executor.kernel_time_s (sum "kernel");
        check (Alcotest.float 0.0) "transfer time from spans"
          exec.Ftn_runtime.Executor.transfer_time_s (sum "transfer");
        check (Alcotest.float 0.0) "overhead time from spans"
          exec.Ftn_runtime.Executor.overhead_time_s (sum "overhead"));
    tc "transfer trace events name the moved array" (fun () ->
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n:32) in
        let transfers =
          List.filter_map
            (function
              | Ftn_runtime.Trace.Transfer { name; _ } -> Some name
              | _ -> None)
            (Ftn_runtime.Trace.events
               run.Core.Run.exec.Ftn_runtime.Executor.trace)
        in
        check Alcotest.bool "has transfers" true (transfers <> []);
        List.iter
          (fun n -> check Alcotest.bool "named" true (n <> ""))
          transfers);
  ]

(* --- bucketed histograms and quantiles --- *)

let quantile_tests =
  [
    tc "single-value histogram is exact at every quantile" (fun () ->
        let r = Metrics.create () in
        for _ = 1 to 3 do
          Metrics.observe ~registry:r "h" 5.0
        done;
        List.iter
          (fun q ->
            match Metrics.histogram_quantile ~registry:r "h" q with
            | Some v -> check (Alcotest.float 1e-12) "exact" 5.0 v
            | None -> Alcotest.fail "expected a quantile")
          [ 0.0; 0.5; 0.9; 0.99; 1.0 ]);
    tc "quantiles of a uniform range are bucket-accurate" (fun () ->
        let r = Metrics.create () in
        for i = 1 to 1000 do
          Metrics.observe ~registry:r "h" (float_of_int i *. 1e-6)
        done;
        let expect q exact =
          match Metrics.histogram_quantile ~registry:r "h" q with
          | None -> Alcotest.fail "expected a quantile"
          | Some v ->
            (* one bucket spans a factor of 10^(1/4) ~ 1.78 *)
            check Alcotest.bool
              (Fmt.str "p%g within a bucket of %g (got %g)" (q *. 100.) exact v)
              true
              (v >= exact /. 1.8 && v <= exact *. 1.8)
        in
        expect 0.5 5e-4;
        expect 0.9 9e-4;
        expect 0.99 9.9e-4);
    tc "quantiles clamp to the observed min and max" (fun () ->
        let r = Metrics.create () in
        Metrics.observe ~registry:r "h" 2e-6;
        Metrics.observe ~registry:r "h" 8e-6;
        (match Metrics.histogram_quantile ~registry:r "h" 0.0 with
        | Some v -> check Alcotest.bool "p0 >= min" true (v >= 2e-6)
        | None -> Alcotest.fail "p0");
        match Metrics.histogram_quantile ~registry:r "h" 1.0 with
        | Some v -> check Alcotest.bool "p100 <= max" true (v <= 8e-6)
        | None -> Alcotest.fail "p100");
    tc "observations land in the bucket whose upper bound they equal"
      (fun () ->
        let r = Metrics.create () in
        let bound = Metrics.bucket_upper 10 in
        Metrics.observe ~registry:r "h" bound;
        match Metrics.find ~registry:r "h" with
        | Some (Metrics.Histogram_v { buckets; _ }) ->
          check Alcotest.int "le semantics" 1 buckets.(10)
        | _ -> Alcotest.fail "expected a histogram");
    tc "empty histogram has no quantiles" (fun () ->
        let empty =
          Metrics.Histogram_v
            {
              count = 0;
              sum = 0.0;
              min_v = infinity;
              max_v = neg_infinity;
              buckets = Array.make Metrics.n_buckets 0;
            }
        in
        check Alcotest.bool "no quantile" true
          (Metrics.quantile empty 0.5 = None));
    tc "merge_into adds counters and merges buckets" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.incr ~registry:a ~by:2 "c";
        Metrics.incr ~registry:b ~by:3 "c";
        Metrics.observe ~registry:a "h" 1e-6;
        Metrics.observe ~registry:b "h" 1e-3;
        Metrics.observe ~registry:b "h" 1e-3;
        Metrics.merge_into ~src:a ~dst:b;
        check Alcotest.int "counter" 5 (Metrics.counter_value ~registry:b "c");
        match Metrics.find ~registry:b "h" with
        | Some (Metrics.Histogram_v { count; min_v; max_v; _ } as v) ->
          check Alcotest.int "count" 3 count;
          check (Alcotest.float 1e-12) "min" 1e-6 min_v;
          check (Alcotest.float 1e-12) "max" 1e-3 max_v;
          check Alcotest.bool "median in upper mass" true
            (match Metrics.quantile v 0.5 with
            | Some m -> m > 1e-5
            | None -> false)
        | _ -> Alcotest.fail "expected a histogram");
  ]

(* --- empty-histogram rendering (the count=0 sentinel fix) --- *)

let empty_hist =
  Metrics.Histogram_v
    {
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
      buckets = Array.make Metrics.n_buckets 0;
    }

let empty_render_tests =
  [
    tc "text render of an empty histogram omits min/mean/max" (fun () ->
        let s = Fmt.str "%a" Metrics.pp_value empty_hist in
        check Alcotest.bool "count=0" true (String.length s > 0);
        check Alcotest.bool "no inf" false
          (Astring_like.contains s "inf" || Astring_like.contains s "nan");
        check Alcotest.bool "no min" false (Astring_like.contains s "min"));
    tc "json render of an empty histogram omits derived fields" (fun () ->
        let s = Json.to_string (Metrics.json_of_value empty_hist) in
        check Alcotest.bool "has count" true
          (Astring_like.contains s "\"count\":0");
        List.iter
          (fun field ->
            check Alcotest.bool ("no " ^ field) false
              (Astring_like.contains s field))
          [ "min"; "max"; "mean"; "p50"; "p90"; "p99"; "buckets" ]);
    tc "populated histogram still renders quantiles" (fun () ->
        let r = Metrics.create () in
        Metrics.observe ~registry:r "h" 3e-6;
        match Metrics.find ~registry:r "h" with
        | Some v ->
          let s = Json.to_string (Metrics.json_of_value v) in
          List.iter
            (fun field ->
              check Alcotest.bool ("has " ^ field) true
                (Astring_like.contains s field))
            [ "min"; "max"; "mean"; "p50"; "p90"; "p99"; "buckets" ]
        | None -> Alcotest.fail "expected a histogram");
  ]

(* --- OpenMetrics exposition format --- *)

let openmetrics_tests =
  [
    tc "sanitize maps invalid chars and leading digits" (fun () ->
        check Alcotest.string "dots and dashes" "a_b_c"
          (Openmetrics.sanitize "a.b-c");
        check Alcotest.string "leading digit" "_9to5"
          (Openmetrics.sanitize "9to5");
        check Alcotest.string "kept" "ok_name:x" (Openmetrics.sanitize "ok_name:x"));
    tc "counters render as _total with a TYPE line" (fun () ->
        let r = Metrics.create () in
        Metrics.incr ~registry:r ~by:3 "device.allocs";
        let s = Openmetrics.render ~registry:r () in
        check Alcotest.bool "type line" true
          (Astring_like.contains s "# TYPE device_allocs counter");
        check Alcotest.bool "total sample" true
          (Astring_like.contains s "device_allocs_total 3"));
    tc "histograms render cumulative buckets, sum and count" (fun () ->
        let r = Metrics.create () in
        Metrics.observe ~registry:r "lat" 1e-6;
        Metrics.observe ~registry:r "lat" 1e-3;
        let s = Openmetrics.render ~registry:r () in
        check Alcotest.bool "type line" true
          (Astring_like.contains s "# TYPE lat histogram");
        check Alcotest.bool "inf bucket" true
          (Astring_like.contains s "lat_bucket{le=\"+Inf\"} 2");
        check Alcotest.bool "count" true (Astring_like.contains s "lat_count 2");
        check Alcotest.bool "sum" true (Astring_like.contains s "lat_sum"));
    tc "render terminates with EOF" (fun () ->
        let r = Metrics.create () in
        Metrics.set_gauge ~registry:r "g" 1.5;
        let s = Openmetrics.render ~registry:r () in
        check Alcotest.bool "eof" true
          (Astring_like.contains s "# EOF");
        check Alcotest.bool "gauge" true (Astring_like.contains s "g 1.5"));
  ]

(* --- flight recorder --- *)

let flight_tests =
  [
    tc "ring keeps the last capacity entries and counts drops" (fun () ->
        let r = Flight.create ~capacity:4 () in
        for i = 1 to 6 do
          Flight.recordf ~recorder:r ~cat:"op" "e%d" i
        done;
        check Alcotest.int "length" 4 (Flight.length ~recorder:r ());
        check Alcotest.int "dropped" 2 (Flight.dropped ~recorder:r ());
        let seqs =
          List.map (fun (e : Flight.entry) -> e.Flight.seq) (Flight.entries ~recorder:r ())
        in
        check (Alcotest.list Alcotest.int) "oldest first" [ 3; 4; 5; 6 ] seqs);
    tc "excerpt limits, indents and is empty when nothing recorded"
      (fun () ->
        let r = Flight.create ~capacity:8 () in
        check Alcotest.string "empty" "" (Flight.excerpt ~recorder:r ());
        for i = 1 to 5 do
          Flight.recordf ~recorder:r ~cat:"op" "e%d" i
        done;
        let ex = Flight.excerpt ~recorder:r ~limit:2 () in
        check Alcotest.bool "last kept" true (Astring_like.contains ex "e5");
        check Alcotest.bool "older dropped" false (Astring_like.contains ex "e3");
        check Alcotest.bool "indented" true (String.length ex > 2 && String.sub ex 0 2 = "  "));
    tc "set_capacity resizes and clear resets" (fun () ->
        let r = Flight.create ~capacity:2 () in
        Flight.record ~recorder:r ~cat:"op" "x";
        Flight.set_capacity ~recorder:r 8;
        check Alcotest.int "capacity" 8 (Flight.capacity ~recorder:r ());
        check Alcotest.int "entries discarded" 0 (Flight.length ~recorder:r ());
        Flight.record ~recorder:r ~cat:"op" "y";
        check Alcotest.bool "seq keeps increasing" true
          ((List.hd (Flight.entries ~recorder:r ())).Flight.seq > 1);
        Flight.clear ~recorder:r ();
        check Alcotest.int "cleared" 0 (Flight.length ~recorder:r ()));
    tc "entries carry loc and sim time into the rendered line" (fun () ->
        let r = Flight.create () in
        Flight.record ~recorder:r ~time_s:1.5e-6 ~loc:"t.f90:3:1" ~cat:"launch"
          "launch k";
        let ex = Flight.excerpt ~recorder:r () in
        check Alcotest.bool "msg" true (Astring_like.contains ex "launch k");
        check Alcotest.bool "loc" true (Astring_like.contains ex "t.f90:3:1");
        check Alcotest.bool "time" true (Astring_like.contains ex "1.500"));
  ]

(* --- profiler op counters --- *)

let profile_tests =
  [
    tc "count_op accumulates and top_ops sorts by count" (fun () ->
        Profile.reset ();
        for _ = 1 to 3 do
          Profile.count_op "arith.addf"
        done;
        Profile.count_op "memref.load";
        check Alcotest.int "total" 4 (Profile.total_ops ());
        (match Profile.top_ops 1 with
        | [ (name, n) ] ->
          check Alcotest.string "hottest" "arith.addf" name;
          check Alcotest.int "count" 3 n
        | _ -> Alcotest.fail "expected one op");
        Profile.reset ();
        check Alcotest.int "reset" 0 (Profile.total_ops ()));
    tc "op_counter returns the shared ref" (fun () ->
        Profile.reset ();
        let c = Profile.op_counter "scf.yield" in
        incr c;
        incr c;
        check Alcotest.int "shared" 2
          (match Profile.ops () with
          | [ ("scf.yield", n) ] -> n
          | _ -> -1);
        Profile.reset ());
    tc "both interpreter engines count the same ops" (fun () ->
        let src =
          "program p\nreal :: a(8)\ninteger :: i\n!$omp target parallel do\n\
           do i = 1, 8\na(i) = a(i) * 2.0\nend do\n\
           !$omp end target parallel do\nend program"
        in
        let count engine =
          Profile.reset ();
          Profile.set_enabled true;
          Fun.protect
            ~finally:(fun () -> Profile.set_enabled false)
            (fun () ->
              let art = Core.Compiler.compile src in
              let bs = Core.Compiler.synthesise art in
              ignore
                (Ftn_runtime.Executor.run ~engine
                   ~host:art.Core.Compiler.host ~bitstream:bs ());
              Profile.ops ())
        in
        (* the compiled engine resolves counters at closure-compile
           time, so ops that were compiled but never executed appear
           with count 0; compare executed counts only *)
        let executed l = List.filter (fun (_, n) -> n > 0) l in
        let tree = executed (count `Tree)
        and compiled = executed (count `Compiled) in
        Profile.reset ();
        check Alcotest.bool "nonempty" true (tree <> []);
        check
          Alcotest.(list (pair string int))
          "engines agree" tree compiled);
  ]

(* --- Json parser round-trips (qcheck properties) --- *)

let json_gen =
  let open QCheck.Gen in
  let any_string =
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 10)
  in
  let float_gen =
    oneofl
      [ 0.0; 1.0; -1.5; 3.25; 1e30; -2.5e-9; Float.nan; Float.infinity;
        Float.neg_infinity ]
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) float_gen;
        map (fun s -> Json.String s) any_string;
      ]
  in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 0 then scalar
          else
            frequency
              [
                (3, scalar);
                ( 1,
                  map
                    (fun xs -> Json.List xs)
                    (list_size (int_bound 4) (self (size / 2))) );
                ( 1,
                  map
                    (fun kvs -> Json.Obj kvs)
                    (list_size (int_bound 4)
                       (pair any_string (self (size / 2)))) );
              ])
        (min size 6))

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error m -> QCheck.Test.fail_reportf "parse failed on %S: %s" s m

let json_prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:500 ~name:"string escaping round-trips any bytes"
        (QCheck.make
           QCheck.Gen.(
             string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 24))
           ~print:String.escaped)
        (fun s ->
          parse_exn (Json.to_string (Json.String s)) = Json.String s);
      QCheck.Test.make ~count:300
        ~name:"serialise/parse/serialise is idempotent (incl. non-finite)"
        (QCheck.make json_gen ~print:Json.to_string)
        (fun j ->
          let s = Json.to_string j in
          Json.to_string (parse_exn s) = s);
      QCheck.Test.make ~count:300
        ~name:"finite trees without floats round-trip structurally"
        (QCheck.make json_gen ~print:Json.to_string)
        (fun j ->
          (* floats legitimately re-parse to a different constructor
             (nan -> null) or lose precision; everything else must
             round-trip exactly *)
          let rec no_floats = function
            | Json.Float _ -> false
            | Json.List xs -> List.for_all no_floats xs
            | Json.Obj kvs -> List.for_all (fun (_, v) -> no_floats v) kvs
            | _ -> true
          in
          QCheck.assume (no_floats j);
          parse_exn (Json.to_string j) = j);
      QCheck.Test.make ~count:200 ~name:"control characters escape losslessly"
        (QCheck.make
           QCheck.Gen.(
             string_size ~gen:(map Char.chr (int_range 0 31)) (int_bound 12))
           ~print:String.escaped)
        (fun s ->
          let rendered = Json.to_string (Json.String s) in
          (* nothing below 0x20 may appear raw in the output *)
          String.for_all (fun c -> Char.code c >= 0x20) rendered
          && parse_exn rendered = Json.String s);
    ]

let () =
  Alcotest.run "obs"
    [
      ("spans", span_tests);
      ("metrics", metrics_tests);
      ("domains", domain_tests);
      ("quantiles", quantile_tests);
      ("empty-histogram", empty_render_tests);
      ("openmetrics", openmetrics_tests);
      ("flight", flight_tests);
      ("profile", profile_tests);
      ("json-props", json_prop_tests);
      ("log", log_tests);
      ("chrome-trace", chrome_tests);
      ("e2e", e2e_tests);
    ]
