(* Property-based tests (qcheck): structural invariants of the IR,
   semantic equivalences of the passes, runtime invariants of the data
   environment, and numerical agreement between the compiled pipeline and
   the OCaml references on randomised inputs. *)

open Ftn_ir
open Ftn_dialects

let count = 100

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- generators --- *)

let scalar_type_gen =
  QCheck.Gen.oneofl [ Types.I1; Types.I32; Types.I64; Types.Index; Types.F32; Types.F64 ]

let type_gen =
  let open QCheck.Gen in
  let base = scalar_type_gen in
  let memref =
    let* elt = oneofl [ Types.F32; Types.F64; Types.I32 ] in
    let* space = oneofl [ 0; 1; 2 ] in
    let* dims = list_size (int_range 0 3) (oneof [ map (fun n -> Types.Static (n + 1)) (int_range 0 63); return Types.Dynamic ]) in
    return (Types.Memref { Types.shape = dims; elt; memory_space = space })
  in
  oneof [ base; memref;
          map (fun t -> Types.Ptr t) base;
          map (fun t -> Types.Stream t) base;
          return Types.Kernel_handle; return Types.Axi_protocol ]

let type_roundtrip =
  QCheck.Test.make ~count ~name:"type print/parse round-trips"
    (QCheck.make type_gen ~print:Types.to_string)
    (fun ty ->
      Types.equal ty (Ir_parser.parse_type_string (Types.to_string ty)))

let attr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Attr.i32 n) (int_range (-1000) 1000);
        map (fun x -> Attr.f64 x) (float_bound_inclusive 1e6);
        map (fun s -> Attr.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun s -> Attr.Symbol ("s" ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
        map (fun b -> Attr.Bool b) bool;
        return Attr.Unit;
      ]
  in
  oneof [ leaf; map (fun xs -> Attr.Array xs) (list_size (int_range 0 4) leaf) ]

(* Attributes round-trip through the op parser when attached to an op. *)
let attr_roundtrip =
  QCheck.Test.make ~count ~name:"attrs survive print/parse on an op"
    (QCheck.make attr_gen ~print:Attr.to_string)
    (fun attr ->
      let op = Op.make "test.op" ~attrs:[ ("k", attr) ] in
      let m = Op.module_op [ op ] in
      let m' = Ir_parser.parse_module (Printer.to_string m) in
      let op' = List.hd (Op.module_body m') in
      match Op.find_attr op' "k" with
      | Some a -> Attr.equal a attr
      | None -> false)

(* Random straight-line arith programs round-trip through the printer. *)
let arith_module_gen =
  let open QCheck.Gen in
  let* seed_ops = int_range 1 12 in
  return
    (let b = Builder.create () in
     let pool = ref [] in
     let ops = ref [] in
     let emit op =
       ops := op :: !ops;
       pool := Op.result1 op :: !pool
     in
     emit (Arith.const_i32 b 1);
     emit (Arith.const_i32 b 2);
     for i = 0 to seed_ops - 1 do
       let x = List.nth !pool (i mod List.length !pool) in
       let y = List.hd !pool in
       emit (if i mod 3 = 0 then Arith.addi b x y
             else if i mod 3 = 1 then Arith.muli b x y
             else Arith.subi b x y)
     done;
     Op.module_op
       [ Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
           (List.rev (Func_d.return () :: !ops)) ])

let module_roundtrip =
  QCheck.Test.make ~count:50 ~name:"random modules round-trip textually"
    (QCheck.make arith_module_gen ~print:Printer.to_string)
    (fun m ->
      let text = Printer.to_string m in
      String.equal text (Printer.to_string (Ir_parser.parse_module text)))

(* Constant folding preserves semantics: evaluate the last value both ways. *)
let fold_preserves_semantics =
  QCheck.Test.make ~count:50 ~name:"canonicalise preserves interpreted results"
    (QCheck.make arith_module_gen ~print:Printer.to_string)
    (fun m ->
      (* rewrite f to return its last defined value *)
      let fn = List.hd (Op.module_body m) in
      let body = Ftn_dialects.Func_d.body fn in
      let last_val =
        List.rev body
        |> List.find_map (fun o ->
               match Op.results o with [ r ] -> Some r | _ -> None)
      in
      match last_val with
      | None -> true
      | Some r ->
        let body' =
          List.filter (fun o -> not (Func_d.is_return o)) body
          @ [ Func_d.return ~operands:[ r ] () ]
        in
        let fn' =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[ Value.ty r ] body'
        in
        let m = Op.module_op [ fn' ] in
        let interp_of mm =
          let state = Ftn_interp.Interp.make [ mm ] in
          Ftn_interp.Interp.run state ~entry:"f" ~args:[]
        in
        interp_of m = interp_of (Ftn_passes.Canonicalize.run m))

(* Verifier accepts everything the frontend + passes produce. *)
let do_loop_program_gen =
  let open QCheck.Gen in
  let* n = int_range 1 30 in
  let* lb = int_range 1 5 in
  let* step = int_range 1 3 in
  return (n, lb, step)

let frontend_loops_verify =
  QCheck.Test.make ~count:30 ~name:"random do-loop programs verify and sum correctly"
    (QCheck.make do_loop_program_gen ~print:(fun (n, lb, s) ->
         Printf.sprintf "n=%d lb=%d step=%d" n lb s))
    (fun (n, lb, step) ->
      let src =
        Printf.sprintf
          "program p\ninteger :: i, s\ns = 0\ndo i = %d, %d, %d\ns = s + i\nend do\nprint *, s\nend program"
          lb n step
      in
      let m = Ftn_frontend.Frontend.to_core_verified src in
      let out, _ = Ftn_runtime.Executor.run_cpu m in
      let expect = ref 0 in
      let i = ref lb in
      while !i <= n do
        expect := !expect + !i;
        i := !i + step
      done;
      Astring_like.contains out (string_of_int !expect))

(* Data environment refcount invariant under random action sequences. *)
let refcount_invariant =
  QCheck.Test.make ~count ~name:"data env refcount matches a trivial model"
    QCheck.(list_of_size (Gen.int_range 0 40) (QCheck.make (QCheck.Gen.int_range 0 2)))
    (fun actions ->
      let env = Ftn_runtime.Data_env.create () in
      let model = ref 0 in
      List.for_all
        (fun action ->
          (match action with
          | 0 ->
            Ftn_runtime.Data_env.acquire env ~name:"v" ~memory_space:1;
            model := !model + 1
          | 1 ->
            Ftn_runtime.Data_env.release env ~name:"v" ~memory_space:1;
            model := max 0 (!model - 1)
          | _ -> ());
          Ftn_runtime.Data_env.refcount env ~name:"v" ~memory_space:1 = !model
          && Ftn_runtime.Data_env.exists env ~name:"v" ~memory_space:1
             = (!model > 0))
        actions)

(* Buffer linearisation: store then load through random valid indices. *)
let buffer_roundtrip =
  let gen =
    let open QCheck.Gen in
    let* dims = list_size (int_range 1 3) (int_range 1 6) in
    let* indices = return (List.map (fun d -> Random.int d) dims) in
    return (dims, indices)
  in
  QCheck.Test.make ~count ~name:"buffer store/load round-trips at any index"
    (QCheck.make gen ~print:(fun (d, i) ->
         Printf.sprintf "dims=[%s] idx=[%s]"
           (String.concat ";" (List.map string_of_int d))
           (String.concat ";" (List.map string_of_int i))))
    (fun (dims, indices) ->
      let buf = Ftn_interp.Rtval.alloc_buffer Types.F64 dims in
      Ftn_interp.Rtval.store buf indices (Ftn_interp.Rtval.Float 3.25);
      Ftn_interp.Rtval.load buf indices = Ftn_interp.Rtval.Float 3.25)

(* Scheduler: more unroll never increases per-element cycles. *)
let unroll_monotonicity =
  QCheck.Test.make ~count:20 ~name:"unroll never slows a pipelined loop down"
    QCheck.(pair (QCheck.make (QCheck.Gen.int_range 1 16)) (QCheck.make (QCheck.Gen.int_range 1 16)))
    (fun (u1, u2) ->
      let u_lo = min u1 u2 and u_hi = max u1 u2 in
      let spec = Ftn_hlsim.Fpga_spec.u280 in
      let cycles_for unroll =
        let src =
          Printf.sprintf
            "program p\nreal :: x(64), y(64)\ninteger :: i\n!$omp target parallel do simd simdlen(%d)\ndo i = 1, 64\ny(i) = y(i) + 2.0 * x(i)\nend do\n!$omp end target parallel do simd\nend program"
            unroll
        in
        let art = Core.Compiler.compile src in
        match art.Core.Compiler.device_hls with
        | Some d ->
          let fn =
            List.find
              (fun o -> Func_d.is_func o && Func_d.has_body o)
              (Op.module_body d)
          in
          let ks = Ftn_hlsim.Schedule.analyse_kernel spec fn in
          (List.hd (Ftn_hlsim.Schedule.flatten_loops ks.Ftn_hlsim.Schedule.loops))
            .Ftn_hlsim.Schedule.cycles_per_iteration
        | None -> infinity
      in
      cycles_for u_hi <= cycles_for u_lo +. 1e-9)

(* The compiled SAXPY agrees with the reference for random a and n. *)
let saxpy_random_agreement =
  let gen =
    let open QCheck.Gen in
    let* n = int_range 1 64 in
    let* a = float_bound_inclusive 8.0 in
    return (n, a)
  in
  QCheck.Test.make ~count:15 ~name:"compiled saxpy matches reference on random inputs"
    (QCheck.make gen ~print:(fun (n, a) -> Printf.sprintf "n=%d a=%f" n a))
    (fun (n, a) ->
      let src =
        Printf.sprintf
          "program p\nreal :: x(%d), y(%d)\nreal :: a\ninteger :: i\na = %f\ndo i = 1, %d\nx(i) = real(i) * 0.5\ny(i) = real(%d - i) * 0.25\nend do\n!$omp target parallel do simd simdlen(4) map(to:x) map(tofrom:y)\ndo i = 1, %d\ny(i) = y(i) + a * x(i)\nend do\n!$omp end target parallel do simd\nend program"
          n n a n n n
      in
      let run = Core.Run.run src in
      let x, y = Ftn_linpack.References.saxpy_inputs ~n in
      let a32 = Ftn_linpack.References.to_f32 a in
      Ftn_linpack.References.saxpy ~a:a32 ~x ~y;
      match Core.Run.device_floats run ~name:"y" with
      | Some got ->
        Array.for_all
          (fun ok -> ok)
          (Array.mapi (fun i v -> Float.abs (v -. y.(i)) <= 1e-5 *. (1.0 +. Float.abs y.(i))) got)
      | None -> false)

(* OpenACC and OpenMP spellings of the same offload agree exactly. *)
let acc_omp_equivalence =
  let gen =
    let open QCheck.Gen in
    let* n = int_range 1 48 in
    let* simdlen = oneofl [ 1; 2; 4; 10 ] in
    return (n, simdlen)
  in
  QCheck.Test.make ~count:12 ~name:"acc and omp produce identical kernels and results"
    (QCheck.make gen ~print:(fun (n, s) -> Printf.sprintf "n=%d simdlen=%d" n s))
    (fun (n, simdlen) ->
      let body =
        Printf.sprintf
          "do i = 1, %d\ny(i) = y(i) + a * x(i)\nend do" n
      in
      let prologue =
        Printf.sprintf
          "real :: x(%d), y(%d)\nreal :: a\ninteger :: i\na = 2.0\ndo i = 1, %d\nx(i) = real(i) * 0.5\ny(i) = real(%d - i) * 0.25\nend do"
          n n n n
      in
      let omp_src =
        Printf.sprintf
          "program p\n%s\n!$omp target parallel do simd simdlen(%d) map(to:x) map(tofrom:y)\n%s\n!$omp end target parallel do simd\nend program"
          prologue simdlen body
      in
      let acc_src =
        Printf.sprintf
          "program p\n%s\n!$acc parallel loop copyin(x) copy(y) vector_length(%d)\n%s\n!$acc end parallel loop\nend program"
          prologue simdlen body
      in
      let run src = Core.Run.run src in
      let a = run omp_src and b = run acc_src in
      let ya = Option.get (Core.Run.device_floats a ~name:"y") in
      let yb = Option.get (Core.Run.device_floats b ~name:"y") in
      Array.for_all2 (fun p q -> p = q) ya yb
      && Float.abs (Core.Run.kernel_time a -. Core.Run.kernel_time b) < 1e-12)

(* Measurement harness statistics. *)
let measure_props =
  QCheck.Test.make ~count ~name:"measure: median close to truth, std bounded"
    QCheck.(pair pos_int (QCheck.make (QCheck.Gen.float_range 1e-4 1.0)))
    (fun (seed, duration) ->
      let s = Core.Measure.measure ~runs:10 ~seed ~jitter_s:25e-6 duration in
      Float.abs (s.Core.Measure.median -. duration) < 1e-4
      && s.Core.Measure.std >= 0.0
      && s.Core.Measure.std < 1e-3)

(* Clone never changes op counts or names. *)
let clone_preserves_structure =
  QCheck.Test.make ~count:50 ~name:"clone preserves structure"
    (QCheck.make arith_module_gen ~print:Printer.to_string)
    (fun m ->
      let b = Builder.for_op m in
      let m', _ = Builder.clone b m in
      Op.count (fun _ -> true) m = Op.count (fun _ -> true) m'
      &&
      let names mm =
        Op.fold (fun acc o -> Op.name o :: acc) [] mm
      in
      names m = names m')

(* --- rewrite engine properties --- *)

(* Worklist and sweep drivers reach the same fixpoint on random arith
   modules under confluent pattern sets: either the canonicalisation
   config alone (fold + dead-op elimination), or pure rename patterns
   with folding and erasure off (renames that race the folder are NOT
   confluent — the two engines may legitimately pick different normal
   forms). The printed IR must be byte-identical: none of these rewrites
   allocates fresh values, so even value numbering agrees. *)
let drivers_agree =
  let rename from into =
    Rewrite.pattern ~roots:[ from ] (from ^ "->" ^ into) (fun _ op ->
        Some (Rewrite.replace_with [ { op with Op.name = into } ]))
  in
  let gen =
    let open QCheck.Gen in
    let* m = arith_module_gen in
    let* mode = int_range 0 2 in
    return (m, mode)
  in
  QCheck.Test.make ~count:50
    ~name:"worklist and sweep reach the same fixpoint"
    (QCheck.make gen ~print:(fun (m, mode) ->
         Printf.sprintf "mode=%d\n%s" mode (Printer.to_string m)))
    (fun (m, mode) ->
      let pats, config =
        match mode with
        | 0 -> ([], Ftn_passes.Canonicalize.config)
        | _ ->
          ( (if mode = 1 then [ rename "arith.subi" "arith.addi" ] else [])
            @ [ rename "arith.muli" "test.opaque_mul" ],
            {
              Rewrite.default_config with
              Rewrite.fold = None;
              is_trivially_dead = (fun _ -> false);
            } )
      in
      let wl = Rewrite.apply ~driver:Rewrite.Worklist ~config pats m in
      let sw = Rewrite.apply ~driver:Rewrite.Sweep ~config pats m in
      String.equal (Printer.to_string wl) (Printer.to_string sw))

(* Substitution cycles of any length — pattern i redirects result i to
   result (i+1) mod k — are detected and reported as a located diagnostic
   naming a pattern, never an infinite loop, under both drivers. *)
let cycle_detection =
  let gen =
    let open QCheck.Gen in
    let* k = int_range 2 5 in
    let* d = oneofl [ Rewrite.Worklist; Rewrite.Sweep ] in
    return (k, d)
  in
  QCheck.Test.make ~count:30 ~name:"substitution cycles raise a diagnostic"
    (QCheck.make gen ~print:(fun (k, d) ->
         Printf.sprintf "k=%d %s" k
           (match d with Rewrite.Worklist -> "worklist" | _ -> "sweep")))
    (fun (k, driver) ->
      let b = Builder.create () in
      let ops =
        List.init k (fun i ->
            Op.make (Printf.sprintf "test.n%d" i)
              ~results:[ Builder.fresh b Types.I32 ])
      in
      let results = List.map Op.result1 ops in
      let use = Op.make "test.use" ~operands:results in
      let fn =
        Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
          (ops @ [ use; Func_d.return () ])
      in
      let pats =
        List.mapi
          (fun i op ->
            let next = List.nth results ((i + 1) mod k) in
            Rewrite.pattern
              ~roots:[ Op.name op ]
              (Printf.sprintf "cycle-%d" i)
              (fun _ o ->
                Some
                  (Rewrite.replace_with
                     ~replacements:[ (Op.result1 o, next) ]
                     [ { o with Op.name = Op.name o ^ "'" } ])))
          ops
      in
      match Rewrite.apply ~driver pats (Op.module_op [ fn ]) with
      | _ -> false
      | exception Ftn_diag.Diag.Diag_failure (d :: _) ->
        Astring_like.contains d.Ftn_diag.Diag.message "substitution cycle")

(* The driver fold hook preserves semantics: folding + DCE under either
   driver leaves the interpreted result of the function unchanged. *)
let fold_matches_interp =
  let gen =
    let open QCheck.Gen in
    let* m = arith_module_gen in
    let* d = oneofl [ Rewrite.Worklist; Rewrite.Sweep ] in
    return (m, d)
  in
  QCheck.Test.make ~count:50 ~name:"driver folding preserves interpreted results"
    (QCheck.make gen ~print:(fun (m, _) -> Printer.to_string m))
    (fun (m, driver) ->
      let fn = List.hd (Op.module_body m) in
      let body = Func_d.body fn in
      let last_val =
        List.rev body
        |> List.find_map (fun o ->
               match Op.results o with [ r ] -> Some r | _ -> None)
      in
      match last_val with
      | None -> true
      | Some r ->
        let body' =
          List.filter (fun o -> not (Func_d.is_return o)) body
          @ [ Func_d.return ~operands:[ r ] () ]
        in
        let fn' =
          Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[ Value.ty r ] body'
        in
        let m = Op.module_op [ fn' ] in
        let interp_of mm =
          let state = Ftn_interp.Interp.make [ mm ] in
          Ftn_interp.Interp.run state ~entry:"f" ~args:[]
        in
        let folded =
          Rewrite.apply ~driver ~config:Ftn_passes.Canonicalize.config [] m
        in
        interp_of m = interp_of folded)

(* Budget exhaustion is observable: a pattern that never stops firing
   trips the rewrite.nonconverged counter and emits a warning on the
   default diagnostics engine naming the last pattern that fired. *)
let nonconvergence_reported =
  let gen =
    let open QCheck.Gen in
    let* iters = int_range 1 4 in
    let* d = oneofl [ Rewrite.Worklist; Rewrite.Sweep ] in
    return (iters, d)
  in
  QCheck.Test.make ~count:20 ~name:"nonconvergence bumps metric and warns"
    (QCheck.make gen ~print:(fun (i, d) ->
         Printf.sprintf "iters=%d %s" i
           (match d with Rewrite.Worklist -> "worklist" | _ -> "sweep")))
    (fun (iters, driver) ->
      let spin =
        Rewrite.pattern ~roots:[ "test.spin" ] "spin-forever" (fun _ _ ->
            Some (Rewrite.replace_with [ Op.make "test.spin" ]))
      in
      let fn =
        Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[]
          [ Op.make "test.spin"; Func_d.return () ]
      in
      let eng = Ftn_diag.Diag_engine.default in
      let warnings0 = Ftn_diag.Diag_engine.warning_count eng in
      let metric0 =
        Ftn_obs.Metrics.counter_value "rewrite.nonconverged"
      in
      let _, stats =
        Rewrite.apply_with_stats ~driver ~max_iterations:iters [ spin ]
          (Op.module_op [ fn ])
      in
      (not stats.Rewrite.converged)
      && Ftn_obs.Metrics.counter_value "rewrite.nonconverged" > metric0
      && Ftn_diag.Diag_engine.warning_count eng > warnings0
      &&
      let last_warning =
        List.hd (List.rev (Ftn_diag.Diag_engine.warnings eng))
      in
      Astring_like.contains last_warning.Ftn_diag.Diag.message "spin-forever")

(* Over-releasing device data no longer hides silently: every release of
   an entry with refcount 0 (or never acquired) bumps the
   data_env.over_release metric and warns on the default engine. *)
let over_release_reported =
  QCheck.Test.make ~count ~name:"over-release warns and bumps its metric"
    QCheck.(
      list_of_size (Gen.int_range 0 40) (QCheck.make (QCheck.Gen.int_range 0 2)))
    (fun actions ->
      let env = Ftn_runtime.Data_env.create () in
      let model = ref 0 in
      let overs = ref 0 in
      let metric0 =
        Ftn_obs.Metrics.counter_value "data_env.over_release"
      in
      let warnings0 =
        Ftn_diag.Diag_engine.warning_count Ftn_diag.Diag_engine.default
      in
      List.iter
        (fun action ->
          match action with
          | 0 ->
            Ftn_runtime.Data_env.acquire env ~name:"v" ~memory_space:1;
            incr model
          | 1 ->
            Ftn_runtime.Data_env.release env ~name:"v" ~memory_space:1;
            if !model = 0 then incr overs else decr model
          | _ -> ())
        actions;
      Ftn_obs.Metrics.counter_value "data_env.over_release" - metric0 = !overs
      && Ftn_diag.Diag_engine.warning_count Ftn_diag.Diag_engine.default
         - warnings0
         >= !overs)

(* Differential testing of the two interpreter engines: random programs
   mixing straight-line arith, scf.if and scf.for must produce identical
   results AND identical step counts under the tree-walker and the
   closure compiler. *)
let interp_program_gen =
  let open QCheck.Gen in
  let* choices =
    list_size (int_range 4 16)
      (pair (int_range 0 5) (pair (int_range 0 20) (int_range 0 20)))
  in
  return
    (let b = Builder.create () in
     let ops = ref [] in
     let pool = ref [] in
     let emit op = ops := op :: !ops in
     let emit_val op =
       emit op;
       pool := Op.result1 op :: !pool
     in
     emit_val (Arith.const_i32 b 3);
     emit_val (Arith.const_i32 b 5);
     let pick k = List.nth !pool (k mod List.length !pool) in
     List.iter
       (fun (kind, (a, c)) ->
         match kind with
         | 0 -> emit_val (Arith.addi b (pick a) (pick c))
         | 1 -> emit_val (Arith.muli b (pick a) (pick c))
         | 2 -> emit_val (Arith.subi b (pick a) (pick c))
         | 3 ->
           let cmp = Arith.cmpi b Arith.Slt (pick a) (pick c) in
           emit cmp;
           let one = Arith.const_i32 b 1 in
           let tv = Arith.addi b (pick a) (Op.result1 one) in
           emit_val
             (Scf.if_ b ~cond:(Op.result1 cmp) ~result_tys:[ Types.I32 ]
                ~then_ops:[ one; tv; Scf.yield ~operands:[ Op.result1 tv ] () ]
                ~else_ops:[ Scf.yield ~operands:[ pick c ] () ]
                ())
         | 4 ->
           let lb = Arith.const_index b 0 in
           let ub = Arith.const_index b ((a mod 6) + 1) in
           let st = Arith.const_index b ((c mod 2) + 1) in
           emit lb;
           emit ub;
           emit st;
           emit_val
             (Scf.for_ b ~lb:(Op.result1 lb) ~ub:(Op.result1 ub)
                ~step:(Op.result1 st)
                ~iter_args:[ pick a ]
                (fun iv args ->
                  let ivc = Arith.index_cast b iv Types.I32 in
                  let s = Arith.addi b (List.hd args) (Op.result1 ivc) in
                  [ ivc; s; Scf.yield ~operands:[ Op.result1 s ] () ]))
         | _ ->
           let cmp = Arith.cmpi b Arith.Sgt (pick a) (pick c) in
           emit cmp;
           emit_val (Arith.select b (Op.result1 cmp) (pick a) (pick c)))
       choices;
     let last = List.hd !pool in
     Op.module_op
       [
         Func_d.func ~sym_name:"f" ~args:[] ~result_tys:[ Types.I32 ]
           (List.rev (Func_d.return ~operands:[ last ] () :: !ops));
       ])

let engines_differential =
  QCheck.Test.make ~count:60
    ~name:"tree and compiled engines agree on results and steps"
    (QCheck.make interp_program_gen ~print:Printer.to_string)
    (fun m ->
      Verifier.verify_exn m;
      let run engine =
        let state = Ftn_interp.Interp.make ~engine [ m ] in
        let r = Ftn_interp.Interp.run state ~entry:"f" ~args:[] in
        (r, state.Ftn_interp.Interp.steps)
      in
      run `Tree = run `Compiled)


(* --- cross-backend differential property --- *)

(* Random arith/scf programs: an offloaded loop whose body is a random
   expression over x(i), y(i), a scalar coefficient and the index,
   conditionally guarded so scf.if paths are exercised too. Both
   backends interpret the same device IR, so results AND interpreter
   step counts must match exactly; only the priced simulated time is
   allowed to differ. *)
let backend_program_gen =
  let open QCheck.Gen in
  let* n = int_range 2 48 in
  let* coeff = float_bound_inclusive 4.0 in
  let* shape = int_range 0 3 in
  let* simdlen = oneofl [ 1; 4; 8 ] in
  return (n, coeff, shape, simdlen)

let backend_program_src (n, coeff, shape, simdlen) =
  let body =
    match shape with
    | 0 -> "y(i) = y(i) + a * x(i)"
    | 1 -> "y(i) = a * x(i) - y(i) * 0.5"
    | 2 -> "if (x(i) > 2.0) then\ny(i) = y(i) + a\nelse\ny(i) = y(i) - x(i)\nend if"
    | _ -> "y(i) = x(i) * x(i) + a * real(i)"
  in
  let pragma =
    if simdlen > 1 then
      Printf.sprintf "!$omp target parallel do simd simdlen(%d) map(to:x) map(tofrom:y)" simdlen
    else "!$omp target parallel do map(to:x) map(tofrom:y)"
  in
  let close =
    if simdlen > 1 then "!$omp end target parallel do simd"
    else "!$omp end target parallel do"
  in
  Printf.sprintf
    "program p\nreal :: x(%d), y(%d)\nreal :: a\ninteger :: i\na = %f\ndo i = 1, %d\nx(i) = real(i) * 0.5\ny(i) = real(%d - i) * 0.25\nend do\n%s\ndo i = 1, %d\n%s\nend do\n%s\nprint *, y(1), y(%d)\nend program"
    n n coeff n n pragma n body close n

let backends_differential =
  QCheck.Test.make ~count:15
    ~name:"vitis and rv backends agree on results and step counts"
    (QCheck.make backend_program_gen ~print:(fun g -> backend_program_src g))
    (fun g ->
      let src = backend_program_src g in
      let run_backend name =
        let backend = Option.get (Ftn_backend.Backend_registry.find name) in
        let options =
          {
            Core.Options.default with
            Core.Options.backend;
            xclbin_name = Ftn_backend.Backend.default_binary backend;
          }
        in
        let before = Ftn_obs.Metrics.counter_value "interp.steps" in
        let art = Core.Compiler.compile ~options src in
        let bs = Core.Compiler.synthesise ~options art in
        let r =
          Ftn_runtime.Executor.run ~host:art.Core.Compiler.host ~bitstream:bs ()
        in
        let steps = Ftn_obs.Metrics.counter_value "interp.steps" - before in
        ( r.Ftn_runtime.Executor.output,
          r.Ftn_runtime.Executor.kernel_launches,
          r.Ftn_runtime.Executor.bytes_transferred,
          steps )
      in
      run_backend "vitis" = run_backend "rv")

(* --- fault-injection differential properties --- *)

module Fault = Ftn_fault.Fault
module Executor = Ftn_runtime.Executor

(* One compiled SAXPY shared by every fault property (compilation
   dominates the cost; the executor runs are cheap). *)
let fault_saxpy =
  lazy
    (let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:24) in
     let bs = Core.Compiler.synthesise art in
     (art.Core.Compiler.host, bs))

let fault_exec ?faults () =
  let host, bitstream = Lazy.force fault_saxpy in
  Executor.run ?faults
    ~diag:(Ftn_diag.Diag_engine.create ())
    ~host ~bitstream ()

let transient_plan_gen =
  let open QCheck.Gen in
  let rule_gen =
    let* kind =
      oneofl
        [
          Fault.Alloc_failure; Fault.Transfer_error; Fault.Kernel_timeout;
          Fault.Launch_failure;
        ]
    in
    let* trigger =
      oneof
        [
          map (fun n -> Fault.Nth n) (int_range 1 4);
          map (fun p -> Fault.Probability (p *. 0.5)) (float_bound_inclusive 1.0);
        ]
    in
    return (Fault.rule kind trigger)
  in
  let* rules = list_size (int_range 1 3) rule_gen in
  let* seed = int_range 0 10_000 in
  return (Fault.plan ~seed rules)

(* The central robustness guarantee: a plan of only transient faults
   changes timing but never semantics. Output and the full device data
   environment are byte-identical to the fault-free run, and the run is
   never degraded; simulated time strictly grows iff something fired. *)
let transient_faults_transparent =
  QCheck.Test.make ~count:40
    ~name:"transient fault plans are semantically transparent"
    (QCheck.make transient_plan_gen ~print:Fault.plan_to_string)
    (fun plan ->
      let clean = fault_exec () in
      let faulted = fault_exec ~faults:plan () in
      String.equal clean.Executor.output faulted.Executor.output
      && String.equal
           (Ftn_runtime.Data_env.snapshot clean.Executor.data)
           (Ftn_runtime.Data_env.snapshot faulted.Executor.data)
      && (not faulted.Executor.degraded)
      && faulted.Executor.cpu_fallbacks = 0
      &&
      if faulted.Executor.faults_injected > 0 then
        faulted.Executor.device_time_s > clean.Executor.device_time_s
      else
        Float.equal faulted.Executor.device_time_s clean.Executor.device_time_s)

(* Persistent kernel-site faults must complete through the host-CPU
   fallback: flagged degraded, yet numerically indistinguishable. *)
let persistent_kernel_degrades =
  QCheck.Test.make ~count:20
    ~name:"persistent kernel faults degrade to a correct CPU fallback"
    (QCheck.make
       (QCheck.Gen.oneofl [ Fault.Launch_failure; Fault.Kernel_timeout ])
       ~print:Fault.kind_code)
    (fun kind ->
      let plan =
        Fault.plan [ Fault.rule ~persistence:Fault.Persistent kind (Fault.Nth 1) ]
      in
      let clean = fault_exec () in
      let faulted = fault_exec ~faults:plan () in
      String.equal clean.Executor.output faulted.Executor.output
      && String.equal
           (Ftn_runtime.Data_env.snapshot clean.Executor.data)
           (Ftn_runtime.Data_env.snapshot faulted.Executor.data)
      && faulted.Executor.degraded
      && faulted.Executor.cpu_fallbacks >= 1
      && faulted.Executor.fallback_time_s > 0.0)

(* The domain-parallel pipeline is deterministic: over random
   multi-function modules it produces byte-identical printed IR for 1, 2
   and 4 domains, equal to the canonically renumbered sequential result,
   with identical rewrite metrics totals (builtin.module visits are not
   counted, so the per-unit module wrappers cannot skew them). *)
let multi_fn_module_gen =
  let open QCheck.Gen in
  let* n_fns = int_range 2 6 in
  let* seeds = list_repeat n_fns (int_range 1 12) in
  return
    (let fn k seed_ops =
       let b = Builder.create () in
       let pool = ref [] in
       let ops = ref [] in
       let emit op =
         ops := op :: !ops;
         pool := Op.result1 op :: !pool
       in
       emit (Arith.const_i32 b (k + 1));
       emit (Arith.const_i32 b 2);
       for i = 0 to seed_ops - 1 do
         let x = List.nth !pool (i mod List.length !pool) in
         let y = List.hd !pool in
         emit
           (if i mod 3 = 0 then Arith.addi b x y
            else if i mod 3 = 1 then Arith.muli b x y
            else Arith.subi b x y)
       done;
       Func_d.func ~sym_name:(Fmt.str "f%d" k) ~args:[] ~result_tys:[]
         (List.rev (Func_d.return () :: !ops))
     in
     Op.module_op (List.mapi fn seeds))

let parallel_pipeline_deterministic =
  QCheck.Test.make ~count:30
    ~name:"parallel pipeline is byte-identical for 1/2/4 domains"
    (QCheck.make multi_fn_module_gen ~print:Printer.to_string)
    (fun m ->
      let passes = [ Ftn_passes.Canonicalize.pass ] in
      let with_metrics f =
        let grab () =
          ( Ftn_obs.Metrics.counter_value "rewrite.ops_visited",
            Ftn_obs.Metrics.counter_value "rewrite.patterns_fired" )
        in
        let v0, f0 = grab () in
        let r = f () in
        let v1, f1 = grab () in
        (r, v1 - v0, f1 - f0)
      in
      let seq, sv, sf =
        with_metrics (fun () -> Pass.run_pipeline_exn passes m)
      in
      let par d =
        with_metrics (fun () ->
            Pass.run_pipeline_parallel_exn ~domains:d passes m)
      in
      let p1, v1, f1 = par 1 in
      let p2, v2, f2 = par 2 in
      let p4, v4, f4 = par 4 in
      let txt = Printer.to_string in
      let canon_seq = Printer.to_string (fst (Op.renumber seq)) in
      String.equal (txt p1) (txt p2)
      && String.equal (txt p1) (txt p4)
      && String.equal (txt p1) canon_seq
      && v1 = sv && v2 = sv && v4 = sv
      && f1 = sf && f2 = sf && f4 = sf)

(* The IR parser is total: on arbitrarily mutated input it either parses
   or raises Parse_error — never any other exception. *)
let parser_totality =
  let gen =
    let open QCheck.Gen in
    let* seed_ops = int_range 1 6 in
    let* mutations = list_size (int_range 0 8) (pair (int_range 0 2000) (char_range ' ' '~')) in
    let* base = arith_module_gen in
    ignore seed_ops;
    return (base, mutations)
  in
  QCheck.Test.make ~count:200 ~name:"parser never raises anything but Parse_error"
    (QCheck.make gen ~print:(fun (m, _) -> Printer.to_string m))
    (fun (m, mutations) ->
      let text = Bytes.of_string (Printer.to_string m) in
      List.iter
        (fun (pos, c) ->
          if Bytes.length text > 0 then
            Bytes.set text (pos mod Bytes.length text) c)
        mutations;
      match Ir_parser.parse_module (Bytes.to_string text) with
      | _ -> true
      | exception Ir_parser.Parse_error _ -> true
      | exception _ -> false)

let () =
  Registry.register_all ();
  Alcotest.run "properties"
    [
      ( "qcheck",
        List.map to_alcotest
          [
            type_roundtrip;
            attr_roundtrip;
            module_roundtrip;
            fold_preserves_semantics;
            frontend_loops_verify;
            refcount_invariant;
            buffer_roundtrip;
            unroll_monotonicity;
            saxpy_random_agreement;
            measure_props;
            clone_preserves_structure;
            acc_omp_equivalence;
            parser_totality;
            parallel_pipeline_deterministic;
            drivers_agree;
            cycle_detection;
            fold_matches_interp;
            nonconvergence_reported;
            over_release_reported;
            engines_differential;
            backends_differential;
            transient_faults_transparent;
            persistent_kernel_degrades;
          ] );
    ]
