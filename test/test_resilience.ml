(* Tests for the resilience/QoS layer of the job queue: the circuit
   breaker state machine (closed/open/half-open/flap-out), deadline
   shedding, tenant quotas, overload watermark shedding, the dep-shed
   cascade, structured diagnostics for dropped jobs, p90 exposure, SLO
   accounting — and the conservation property that every submitted job
   ends up exactly one of run / dropped / shed, with clean runs
   byte-identical whether the resilience layer is armed or off. *)

open Ftn_runtime
module Fault = Ftn_fault.Fault
module Diag_engine = Ftn_diag.Diag_engine

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let persistent_plan =
  match Fault.parse_plan "launch:nth=1:persistent" with
  | Ok p -> p
  | Error m -> Fmt.failwith "bad plan: %s" m

let compiled_saxpy =
  lazy
    (let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:8) in
     (art.Core.Compiler.host, Core.Compiler.synthesise art))

let mk_job ?deps ?tenant ?prio ?deadline_s ~name () =
  let host, bs = Lazy.force compiled_saxpy in
  Jobs.job ?tenant ?deps ?prio ?deadline_s ~name
    (fun ?faults ~sched ~device ~start_s () ->
      Executor.run ?faults ~sched ~device ~start_s ~host ~bitstream:bs ())

(* --- breaker state machine --- *)

let cfg ?(trip = 2) ?(cooldown = 1.0) ?(flap = 3) () =
  { Breaker.trip_threshold = trip; cooldown_s = cooldown; flap_limit = flap }

let state = Alcotest.testable (Fmt.of_to_string (fun s -> Breaker.state_name s))
    (fun a b -> Breaker.state_name a = Breaker.state_name b)

let breaker_tests =
  [
    tc "stays closed below the trip threshold" (fun () ->
        let b = Breaker.create ~device:0 (cfg ~trip:3 ()) in
        Breaker.record b ~now_s:1.0 ~ok:false;
        Breaker.record b ~now_s:2.0 ~ok:false;
        check state "still closed" Breaker.Closed (Breaker.state b);
        check (Alcotest.option (Alcotest.float 0.0)) "admits now" (Some 0.0)
          (Breaker.admit_time_s b));
    tc "a success resets the consecutive-failure count" (fun () ->
        let b = Breaker.create ~device:0 (cfg ~trip:2 ()) in
        Breaker.record b ~now_s:1.0 ~ok:false;
        Breaker.record b ~now_s:2.0 ~ok:true;
        Breaker.record b ~now_s:3.0 ~ok:false;
        check state "still closed" Breaker.Closed (Breaker.state b));
    tc "trips open at the threshold, admitting only after the cooldown"
      (fun () ->
        let b = Breaker.create ~device:0 (cfg ~trip:2 ~cooldown:5.0 ()) in
        Breaker.record b ~now_s:1.0 ~ok:false;
        Breaker.record b ~now_s:2.0 ~ok:false;
        check state "open" (Breaker.Open 7.0) (Breaker.state b);
        check (Alcotest.option (Alcotest.float 0.0)) "admits at 7"
          (Some 7.0) (Breaker.admit_time_s b);
        check Alcotest.int "one trip" 1 (Breaker.trips b));
    tc "an admission after the cooldown becomes the half-open probe"
      (fun () ->
        let b = Breaker.create ~device:0 (cfg ~trip:1 ~cooldown:5.0 ()) in
        Breaker.record b ~now_s:1.0 ~ok:false;
        Breaker.note_admitted b ~now_s:2.0;
        check state "still open before cooldown" (Breaker.Open 6.0)
          (Breaker.state b);
        Breaker.note_admitted b ~now_s:6.5;
        check state "half-open" Breaker.Half_open (Breaker.state b));
    tc "a good probe closes the breaker, a bad one re-opens it" (fun () ->
        let ok_probe = Breaker.create ~device:0 (cfg ~trip:1 ()) in
        Breaker.record ok_probe ~now_s:1.0 ~ok:false;
        Breaker.note_admitted ok_probe ~now_s:3.0;
        Breaker.record ok_probe ~now_s:3.5 ~ok:true;
        check state "closed again" Breaker.Closed (Breaker.state ok_probe);
        let bad_probe = Breaker.create ~device:0 (cfg ~trip:1 ()) in
        Breaker.record bad_probe ~now_s:1.0 ~ok:false;
        Breaker.note_admitted bad_probe ~now_s:3.0;
        Breaker.record bad_probe ~now_s:3.5 ~ok:false;
        check state "re-opened" (Breaker.Open 4.5) (Breaker.state bad_probe);
        check Alcotest.int "two trips" 2 (Breaker.trips bad_probe));
    tc "flapping out quarantines the device permanently" (fun () ->
        let b = Breaker.create ~device:0 (cfg ~trip:1 ~flap:2 ()) in
        Breaker.record b ~now_s:1.0 ~ok:false;
        Breaker.note_admitted b ~now_s:3.0;
        Breaker.record b ~now_s:3.5 ~ok:false;
        check state "quarantined" Breaker.Quarantined (Breaker.state b);
        check (Alcotest.option (Alcotest.float 0.0)) "never admits" None
          (Breaker.admit_time_s b);
        (* further outcomes cannot resurrect it *)
        Breaker.record b ~now_s:9.0 ~ok:true;
        check state "still quarantined" Breaker.Quarantined (Breaker.state b));
    tc "transitions are recorded in order with timestamps" (fun () ->
        let seen = ref [] in
        let b =
          Breaker.create ~device:2
            ~on_transition:(fun ~device ~time_s:_ ~from_ ~to_ ~trips:_ ->
              seen := (device, from_, to_) :: !seen)
            (cfg ~trip:1 ~cooldown:2.0 ())
        in
        Breaker.record b ~now_s:1.0 ~ok:false;
        Breaker.note_admitted b ~now_s:4.0;
        Breaker.record b ~now_s:4.5 ~ok:true;
        check
          (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.string Alcotest.string))
          "callback saw every transition"
          [ (2, "closed", "open"); (2, "open", "half-open");
            (2, "half-open", "closed") ]
          (List.rev !seen);
        let snap = Breaker.snapshot b in
        check Alcotest.int "snapshot transitions" 3
          (List.length snap.Breaker.bk_transitions);
        check Alcotest.string "snapshot state" "closed" snap.Breaker.bk_state);
    tc "parse_config accepts on and field overrides, rejects junk"
      (fun () ->
        (match Breaker.parse_config "on" with
        | Ok c ->
          check Alcotest.int "default trip" 3 c.Breaker.trip_threshold
        | Error m -> Alcotest.failf "on rejected: %s" m);
        (match Breaker.parse_config "trip=5,cooldown=0.5,flap=2" with
        | Ok c ->
          check Alcotest.int "trip" 5 c.Breaker.trip_threshold;
          check (Alcotest.float 0.0) "cooldown" 0.5 c.Breaker.cooldown_s;
          check Alcotest.int "flap" 2 c.Breaker.flap_limit
        | Error m -> Alcotest.failf "override rejected: %s" m);
        (match Breaker.parse_config "trip=0" with
        | Ok _ -> Alcotest.fail "trip=0 accepted"
        | Error _ -> ());
        match Breaker.parse_config "bogus=1" with
        | Ok _ -> Alcotest.fail "bogus field accepted"
        | Error m -> check Alcotest.bool "names the field" true
                       (contains m "bogus"));
  ]

(* --- deadline shedding --- *)

let deadline_tests =
  [
    tc "a job past its admission deadline is shed, charged only the wait"
      (fun () ->
        (* queue_depth 1: the second job's admission gates on the first
           one's completion, which dwarfs a 1 ns deadline. *)
        let specs =
          [
            mk_job ~name:"f" ();
            mk_job ~name:"a" ~deadline_s:1e-9 ();
            mk_job ~name:"b" ~deps:[ "a" ] ();
          ]
        in
        let config =
          { Jobs.default_config with Jobs.devices = 1; queue_depth = 1 }
        in
        let stats = Jobs.run ~config specs in
        check Alcotest.int "one ran" 1 stats.Jobs.jobs_run;
        check Alcotest.int "two shed" 2 stats.Jobs.jobs_shed;
        check Alcotest.int "none dropped" 0 stats.Jobs.jobs_dropped;
        (match stats.Jobs.sheds with
        | [ a; b ] ->
          check Alcotest.string "a shed" "a" a.Jobs.sh_job;
          check Alcotest.string "for its deadline" "deadline" a.Jobs.sh_reason;
          check (Alcotest.float 0.0) "charged the deadline" 1e-9
            a.Jobs.sh_wait_s;
          check Alcotest.string "b cascaded" "b" b.Jobs.sh_job;
          check Alcotest.string "as dep_shed" "dep_shed" b.Jobs.sh_reason
        | l -> Alcotest.failf "expected 2 sheds, got %d" (List.length l));
        (* the shed is visible on the queue trace too *)
        check Alcotest.bool "trace has a shed event" true
          (List.exists
             (function Trace.Shed _ -> true | _ -> false)
             (Trace.events stats.Jobs.trace)));
    tc "the queue-wide default deadline applies to jobs without their own"
      (fun () ->
        let specs = [ mk_job ~name:"f" (); mk_job ~name:"a" () ] in
        let config =
          {
            Jobs.default_config with
            Jobs.devices = 1;
            queue_depth = 1;
            default_deadline_s = Some 1e-9;
          }
        in
        let stats = Jobs.run ~config specs in
        check Alcotest.int "one ran" 1 stats.Jobs.jobs_run;
        check Alcotest.int "one shed" 1 stats.Jobs.jobs_shed);
    tc "a generous per-job deadline overrides a tight default" (fun () ->
        let specs =
          [ mk_job ~name:"f" (); mk_job ~name:"a" ~deadline_s:1e6 () ]
        in
        let config =
          {
            Jobs.default_config with
            Jobs.devices = 1;
            queue_depth = 1;
            default_deadline_s = Some 1e-9;
          }
        in
        let stats = Jobs.run ~config specs in
        check Alcotest.int "both ran" 2 stats.Jobs.jobs_run;
        check Alcotest.int "none shed" 0 stats.Jobs.jobs_shed);
  ]

(* --- tenant quotas --- *)

let quota_tests =
  [
    tc "a quota of 1 serializes a tenant across devices" (fun () ->
        let specs n = List.init n (fun i -> mk_job ~name:(Fmt.str "j%d" i) ()) in
        let free =
          Jobs.run
            ~config:{ Jobs.default_config with Jobs.devices = 2 }
            (specs 4)
        in
        let quota =
          Jobs.run
            ~config:
              {
                Jobs.default_config with
                Jobs.devices = 2;
                tenant_quota = Some 1;
              }
            (specs 4)
        in
        check Alcotest.int "all ran" 4 quota.Jobs.jobs_run;
        check Alcotest.bool "quota stretched the makespan" true
          (quota.Jobs.elapsed_s > free.Jobs.elapsed_s *. 1.5);
        check Alcotest.string "same bytes" free.Jobs.output quota.Jobs.output);
    tc "tenant_share caps in-flight work as a fraction of capacity"
      (fun () ->
        let specs n = List.init n (fun i -> mk_job ~name:(Fmt.str "j%d" i) ()) in
        let free =
          Jobs.run
            ~config:{ Jobs.default_config with Jobs.devices = 2 }
            (specs 4)
        in
        (* 2 devices x depth 8 = 16 slots; a 1/16 share caps at 1. *)
        let share =
          Jobs.run
            ~config:
              {
                Jobs.default_config with
                Jobs.devices = 2;
                tenant_share = Some 0.0625;
              }
            (specs 4)
        in
        check Alcotest.int "all ran" 4 share.Jobs.jobs_run;
        check Alcotest.bool "share stretched the makespan" true
          (share.Jobs.elapsed_s > free.Jobs.elapsed_s *. 1.5));
    tc "per-tenant stats split runs, sheds and quantiles by tenant"
      (fun () ->
        let specs =
          List.init 6 (fun i ->
              mk_job ~tenant:(Fmt.str "t%d" (i mod 2))
                ~name:(Fmt.str "j%d" i) ())
        in
        let stats =
          Jobs.run
            ~config:
              { Jobs.default_config with Jobs.devices = 1; slo_s = Some 1e-12 }
            specs
        in
        check Alcotest.int "two tenants" 2 (List.length stats.Jobs.tenants);
        List.iter
          (fun (t : Jobs.tenant_stats) ->
            check Alcotest.int (t.Jobs.t_name ^ " ran") 3 t.Jobs.t_run;
            check Alcotest.bool "p50 <= p90 <= p99" true
              (t.Jobs.t_p50_s <= t.Jobs.t_p90_s
              && t.Jobs.t_p90_s <= t.Jobs.t_p99_s);
            check Alcotest.int (t.Jobs.t_name ^ " slo violations") 3
              t.Jobs.t_slo_violations)
          stats.Jobs.tenants;
        check Alcotest.int "global slo count" 6 stats.Jobs.slo_violations);
  ]

(* --- overload watermark --- *)

let watermark_tests =
  [
    tc "overload sheds the lowest-priority, newest work first" (fun () ->
        let prios = [| 0; 1; 2; 0; 1; 2 |] in
        let specs =
          List.init 6 (fun i ->
              mk_job ~prio:prios.(i) ~name:(Fmt.str "j%d" i) ())
        in
        let stats =
          Jobs.run
            ~config:
              {
                Jobs.default_config with
                Jobs.devices = 1;
                shed_watermark = Some 3;
              }
            specs
        in
        check Alcotest.int "three shed" 3 stats.Jobs.jobs_shed;
        check Alcotest.int "three ran" 3 stats.Jobs.jobs_run;
        let shed_names =
          List.sort compare
            (List.map (fun s -> s.Jobs.sh_job) stats.Jobs.sheds)
        in
        (* prio-0 jobs go first (newest of a tie first), then prio 1 *)
        check (Alcotest.list Alcotest.string) "victims" [ "j0"; "j3"; "j4" ]
          shed_names;
        List.iter
          (fun s ->
            check Alcotest.string "reason" "overload" s.Jobs.sh_reason)
          stats.Jobs.sheds);
    tc "a watermark above the backlog sheds nothing" (fun () ->
        let specs = List.init 4 (fun i -> mk_job ~name:(Fmt.str "j%d" i) ()) in
        let plain = Jobs.run specs in
        let marked =
          Jobs.run
            ~config:{ Jobs.default_config with Jobs.shed_watermark = Some 64 }
            specs
        in
        check Alcotest.int "none shed" 0 marked.Jobs.jobs_shed;
        check Alcotest.string "identical bytes" plain.Jobs.output
          marked.Jobs.output);
  ]

(* --- breaker wired through the queue --- *)

let queue_breaker_tests =
  [
    tc "a quarantined-only fleet sheds instead of hanging" (fun () ->
        (* One device, persistent faults, trip/flap of 1: the first job
           degrades to the CPU and quarantines the device, the second is
           shed with no_device. *)
        let specs = [ mk_job ~name:"a" (); mk_job ~name:"b" () ] in
        let stats =
          Jobs.run
            ~config:
              {
                Jobs.default_config with
                Jobs.devices = 1;
                fault_device = Some (0, persistent_plan);
                breaker =
                  Some
                    {
                      Breaker.trip_threshold = 1;
                      cooldown_s = 1e-3;
                      flap_limit = 1;
                    };
              }
            specs
        in
        check Alcotest.int "first ran (degraded)" 1 stats.Jobs.jobs_run;
        check Alcotest.int "second shed" 1 stats.Jobs.jobs_shed;
        (match stats.Jobs.sheds with
        | [ s ] -> check Alcotest.string "no_device" "no_device" s.Jobs.sh_reason
        | _ -> Alcotest.fail "expected exactly one shed");
        match stats.Jobs.breakers with
        | [ b ] ->
          check Alcotest.string "quarantined" "quarantined" b.Breaker.bk_state;
          check Alcotest.int "one trip" 1 b.Breaker.bk_trips;
          check Alcotest.bool "breaker transition on the trace" true
            (List.exists
               (function Trace.Breaker _ -> true | _ -> false)
               (Trace.events stats.Jobs.trace))
        | l -> Alcotest.failf "expected 1 breaker, got %d" (List.length l));
    tc "with a healthy peer the breaker steers work off the bad board"
      (fun () ->
        let specs = List.init 8 (fun i -> mk_job ~name:(Fmt.str "j%d" i) ()) in
        let retry = { Fault.default_retry with Fault.drain = false } in
        let host, bs = Lazy.force compiled_saxpy in
        let specs =
          List.map
            (fun (s : Jobs.spec) ->
              {
                s with
                Jobs.js_run =
                  (fun ?faults ~sched ~device ~start_s () ->
                    Executor.run ?faults ~retry ~sched ~device ~start_s ~host
                      ~bitstream:bs ());
              })
            specs
        in
        let stats =
          Jobs.run
            ~config:
              {
                Jobs.default_config with
                Jobs.devices = 2;
                fault_device = Some (1, persistent_plan);
                breaker =
                  Some
                    {
                      Breaker.trip_threshold = 1;
                      cooldown_s = 1e-3;
                      flap_limit = 1;
                    };
              }
            specs
        in
        check Alcotest.int "everything ran" 8 stats.Jobs.jobs_run;
        check Alcotest.int "nothing shed" 0 stats.Jobs.jobs_shed;
        let bad = List.nth stats.Jobs.breakers 1 in
        check Alcotest.string "bad board quarantined" "quarantined"
          bad.Breaker.bk_state;
        (* after the quarantine no further job lands on device 1 *)
        let d1 = Scheduler.device stats.Jobs.scheduler 1 in
        check Alcotest.bool "device 1 took few jobs" true
          (d1.Scheduler.dev_jobs <= 2));
  ]

(* --- dropped-job diagnostics and p90 --- *)

let misc_tests =
  [
    tc "dropped jobs emit structured warnings naming the dependency"
      (fun () ->
        let diag = Diag_engine.create () in
        let specs =
          [
            mk_job ~name:"ok" ();
            mk_job ~name:"cyc_a" ~deps:[ "cyc_b" ] ();
            mk_job ~name:"cyc_b" ~deps:[ "cyc_a" ] ();
            mk_job ~name:"orphan" ~deps:[ "no_such_job" ] ();
          ]
        in
        let stats = Jobs.run ~diag specs in
        check Alcotest.int "one ran" 1 stats.Jobs.jobs_run;
        check Alcotest.int "three dropped" 3 stats.Jobs.jobs_dropped;
        check Alcotest.int "three warnings" 3 (Diag_engine.warning_count diag);
        let messages =
          List.map (fun (d : Ftn_diag.Diag.t) -> d.Ftn_diag.Diag.message)
            (Diag_engine.warnings diag)
        in
        let some_contains subs =
          List.exists
            (fun m -> List.for_all (fun sub -> contains m sub) subs)
            messages
        in
        check Alcotest.bool "cycle named" true
          (some_contains [ "cyc_a"; "cyclic"; "cyc_b" ]);
        check Alcotest.bool "unknown dep named" true
          (some_contains [ "orphan"; "unknown"; "no_such_job" ]));
    tc "p90 sits between p50 and p99" (fun () ->
        let specs = List.init 10 (fun i -> mk_job ~name:(Fmt.str "j%d" i) ()) in
        let stats = Jobs.run specs in
        check Alcotest.bool "p90 positive" true (stats.Jobs.p90_latency_s > 0.0);
        check Alcotest.bool "ordered" true
          (stats.Jobs.p50_latency_s <= stats.Jobs.p90_latency_s
          && stats.Jobs.p90_latency_s <= stats.Jobs.p99_latency_s));
    tc "bad resilience configs are rejected" (fun () ->
        let bad config =
          match Jobs.run ~config [ mk_job ~name:"a" () ] with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        check Alcotest.bool "quota 0" true
          (bad { Jobs.default_config with Jobs.tenant_quota = Some 0 });
        check Alcotest.bool "share > 1" true
          (bad { Jobs.default_config with Jobs.tenant_share = Some 1.5 });
        check Alcotest.bool "watermark 0" true
          (bad { Jobs.default_config with Jobs.shed_watermark = Some 0 }));
  ]

(* --- conservation and transparency properties --- *)

let props =
  let build_specs (n, seed) =
    let rng = Random.State.make [| seed |] in
    List.init n (fun i ->
        let deps =
          List.filteri
            (fun j _ -> j < i && Random.State.int rng 4 = 0)
            (List.init n (fun j -> j))
          |> List.map (Fmt.str "j%d")
        in
        (* an unknown dep in ~1 of 8 jobs exercises the dropped path *)
        let deps =
          if Random.State.int rng 8 = 0 then "missing" :: deps else deps
        in
        let deadline_s =
          match Random.State.int rng 3 with
          | 0 -> Some 1e-9
          | 1 -> Some 1.0
          | _ -> None
        in
        mk_job ~deps ?deadline_s
          ~tenant:(Fmt.str "t%d" (i mod 3))
          ~prio:(Random.State.int rng 3)
          ~name:(Fmt.str "j%d" i) ())
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:12
        ~name:
          "conservation: every job is exactly one of run / dropped / shed \
           under random DAGs, deadlines, faults and devices"
        (QCheck.make
           QCheck.Gen.(pair (int_range 1 8) (int_bound 10_000))
           ~print:(fun (n, seed) -> Fmt.str "n=%d seed=%d" n seed))
        (fun ((n, seed) as case) ->
          let devices = 1 + (seed mod 3) in
          let config =
            {
              Jobs.default_config with
              Jobs.devices;
              queue_depth = 1 + (seed mod 4);
              fault_device =
                (if seed mod 2 = 0 then Some (0, persistent_plan) else None);
              tenant_quota = (if seed mod 5 = 0 then Some 1 else None);
              shed_watermark = (if seed mod 7 = 0 then Some 2 else None);
              breaker =
                (if seed mod 3 = 0 then Some Breaker.default_config else None);
            }
          in
          let diag = Diag_engine.create () in
          let stats = Jobs.run ~config ~diag (build_specs case) in
          if
            stats.Jobs.jobs_run + stats.Jobs.jobs_dropped + stats.Jobs.jobs_shed
            <> n
          then
            QCheck.Test.fail_reportf "%d run + %d dropped + %d shed <> %d"
              stats.Jobs.jobs_run stats.Jobs.jobs_dropped stats.Jobs.jobs_shed
              n;
          if stats.Jobs.jobs_dropped <> Diag_engine.warning_count diag then
            QCheck.Test.fail_reportf "%d dropped but %d warnings"
              stats.Jobs.jobs_dropped
              (Diag_engine.warning_count diag);
          true);
      QCheck.Test.make ~count:12
        ~name:
          "transparency: clean runs are byte-identical with the resilience \
           layer armed vs off"
        (QCheck.make
           QCheck.Gen.(pair (int_range 1 8) (int_bound 10_000))
           ~print:(fun (n, seed) -> Fmt.str "n=%d seed=%d" n seed))
        (fun (n, seed) ->
          (* clean specs: no per-job deadlines, no unknown deps *)
          let specs () =
            let rng = Random.State.make [| seed |] in
            List.init n (fun i ->
                let deps =
                  List.filteri
                    (fun j _ -> j < i && Random.State.int rng 4 = 0)
                    (List.init n (fun j -> j))
                  |> List.map (Fmt.str "j%d")
                in
                mk_job ~deps
                  ~tenant:(Fmt.str "t%d" (i mod 3))
                  ~name:(Fmt.str "j%d" i) ())
          in
          let devices = 1 + (seed mod 3) in
          let off =
            Jobs.run
              ~config:{ Jobs.default_config with Jobs.devices }
              (specs ())
          in
          let on =
            Jobs.run
              ~config:
                {
                  Jobs.default_config with
                  Jobs.devices;
                  default_deadline_s = Some 1e6;
                  tenant_quota = Some 1024;
                  tenant_share = Some 1.0;
                  slo_s = Some 1e6;
                  breaker = Some Breaker.default_config;
                  shed_watermark = Some 100_000;
                }
              (specs ())
          in
          if not (String.equal off.Jobs.output on.Jobs.output) then
            QCheck.Test.fail_reportf "outputs differ with resilience armed";
          if off.Jobs.jobs_run <> on.Jobs.jobs_run then
            QCheck.Test.fail_reportf "jobs_run differs (%d vs %d)"
              off.Jobs.jobs_run on.Jobs.jobs_run;
          if not (Float.equal off.Jobs.elapsed_s on.Jobs.elapsed_s) then
            QCheck.Test.fail_reportf "makespan differs: %.17g vs %.17g"
              off.Jobs.elapsed_s on.Jobs.elapsed_s;
          if on.Jobs.jobs_shed <> 0 then
            QCheck.Test.fail_reportf "clean run shed %d jobs"
              on.Jobs.jobs_shed;
          true);
    ]

let () =
  Alcotest.run "resilience"
    [
      ("breaker", breaker_tests);
      ("deadline", deadline_tests);
      ("quota", quota_tests);
      ("watermark", watermark_tests);
      ("queue-breaker", queue_breaker_tests);
      ("misc", misc_tests);
      ("props", props);
    ]
