(* Tests for the host runtime: the reference-counted data environment, the
   executor's device semantics, timing charges, and the event trace. *)

open Ftn_interp
open Ftn_hlsim
open Ftn_runtime

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let data_env_tests =
  [
    tc "refcounting lifecycle" (fun () ->
        let env = Data_env.create () in
        check Alcotest.bool "absent" false (Data_env.exists env ~name:"a" ~memory_space:1);
        Data_env.acquire env ~name:"a" ~memory_space:1;
        check Alcotest.bool "live" true (Data_env.exists env ~name:"a" ~memory_space:1);
        Data_env.acquire env ~name:"a" ~memory_space:1;
        check Alcotest.int "count 2" 2 (Data_env.refcount env ~name:"a" ~memory_space:1);
        Data_env.release env ~name:"a" ~memory_space:1;
        check Alcotest.bool "still live" true
          (Data_env.exists env ~name:"a" ~memory_space:1);
        Data_env.release env ~name:"a" ~memory_space:1;
        check Alcotest.bool "dead" false (Data_env.exists env ~name:"a" ~memory_space:1));
    tc "release never goes negative" (fun () ->
        let env = Data_env.create () in
        Data_env.release env ~name:"a" ~memory_space:1;
        check Alcotest.int "zero" 0 (Data_env.refcount env ~name:"a" ~memory_space:1);
        Data_env.acquire env ~name:"a" ~memory_space:1;
        check Alcotest.int "one" 1 (Data_env.refcount env ~name:"a" ~memory_space:1));
    tc "alloc reuse by shape" (fun () ->
        let env = Data_env.create () in
        let b1, fresh1 =
          Data_env.alloc env ~name:"x" ~memory_space:1 ~elt:Ftn_ir.Types.F32
            ~shape:[ 8 ]
        in
        check Alcotest.bool "first is fresh" true fresh1;
        Rtval.store b1 [ 0 ] (Rtval.Float 1.5);
        let b2, fresh2 =
          Data_env.alloc env ~name:"x" ~memory_space:1 ~elt:Ftn_ir.Types.F32
            ~shape:[ 8 ]
        in
        check Alcotest.bool "reused" false fresh2;
        check Alcotest.bool "same storage" true
          (Rtval.load b2 [ 0 ] = Rtval.Float 1.5);
        let _, fresh3 =
          Data_env.alloc env ~name:"x" ~memory_space:1 ~elt:Ftn_ir.Types.F32
            ~shape:[ 16 ]
        in
        check Alcotest.bool "reshape is fresh" true fresh3);
    tc "memory spaces are independent" (fun () ->
        let env = Data_env.create () in
        Data_env.acquire env ~name:"a" ~memory_space:1;
        check Alcotest.bool "space 2 empty" false
          (Data_env.exists env ~name:"a" ~memory_space:2));
    tc "lookup_exn on missing data raises" (fun () ->
        let env = Data_env.create () in
        try
          ignore (Data_env.lookup_exn env ~name:"ghost" ~memory_space:1);
          Alcotest.fail "expected exception"
        with Data_env.Device_data_error _ -> ());
    tc "live_names lists acquired data" (fun () ->
        let env = Data_env.create () in
        Data_env.acquire env ~name:"b" ~memory_space:1;
        Data_env.acquire env ~name:"a" ~memory_space:1;
        check (Alcotest.list Alcotest.string) "sorted" [ "1:a"; "1:b" ]
          (Data_env.live_names env));
  ]

(* A compiled SAXPY run shared across executor tests. *)
let saxpy_run n =
  Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n)

let executor_tests =
  [
    tc "kernel executes and produces correct numbers" (fun () ->
        let n = 64 in
        let run = saxpy_run n in
        let x, y = Ftn_linpack.References.saxpy_inputs ~n in
        Ftn_linpack.References.saxpy ~a:2.0 ~x ~y;
        match Core.Run.device_floats run ~name:"y" with
        | Some got ->
          Array.iteri
            (fun i v ->
              if Float.abs (v -. y.(i)) > 1e-6 then
                Alcotest.failf "y(%d) = %f, want %f" i v y.(i))
            got
        | None -> Alcotest.fail "y not on device");
    tc "timing components add up" (fun () ->
        let run = saxpy_run 64 in
        let r = run.Core.Run.exec in
        check (Alcotest.float 1e-12) "sum"
          r.Executor.device_time_s
          (r.Executor.kernel_time_s +. r.Executor.transfer_time_s
          +. r.Executor.overhead_time_s +. r.Executor.fallback_time_s));
    tc "running totals match span-folded totals" (fun () ->
        (* The O(1) per-track totals maintained by [charge] must agree
           exactly with a fold over the sim-clock spans — drive the host
           API directly so we can interrogate the context. *)
        let n = 32 in
        let spec = Fpga_spec.u280 in
        let bitstream =
          Synth.synthesise ~frontend:Resources.Clang_hls ~spec
            ~xclbin_name:"crosscheck.xclbin"
            (Ftn_linpack.Hls_baselines.saxpy_device ~n)
        in
        let ctx = Executor.create_context bitstream in
        let x, y = Ftn_linpack.References.saxpy_inputs ~n in
        let hx = Rtval.of_float_array Ftn_ir.Types.F32 x in
        let hy = Rtval.of_float_array Ftn_ir.Types.F32 y in
        let ha = Rtval.of_float_array ~shape:[] Ftn_ir.Types.F32 [| 2.0 |] in
        let dx =
          Executor.api_alloc ctx ~name:"x" ~memory_space:1
            ~elt:Ftn_ir.Types.F32 ~shape:[ n ]
        in
        let dy =
          Executor.api_alloc ctx ~name:"y" ~memory_space:1
            ~elt:Ftn_ir.Types.F32 ~shape:[ n ]
        in
        let da =
          Executor.api_alloc ctx ~name:"a" ~memory_space:1
            ~elt:Ftn_ir.Types.F32 ~shape:[]
        in
        Executor.api_transfer ctx ~src:hx ~dst:dx;
        Executor.api_transfer ctx ~src:hy ~dst:dy;
        Executor.api_transfer ctx ~src:ha ~dst:da;
        Executor.api_launch ctx ~kernel:"saxpy_hw"
          [ Rtval.Buf dx; Rtval.Buf dy; Rtval.Buf da ];
        Executor.api_transfer ctx ~src:dy ~dst:hy;
        let _, kernel, transfer, overhead = Executor.summary ctx in
        check Alcotest.bool "kernel > 0" true (kernel > 0.0);
        check Alcotest.bool "transfer > 0" true (transfer > 0.0);
        check Alcotest.bool "overhead > 0" true (overhead > 0.0);
        List.iter
          (fun (track, total) ->
            check (Alcotest.float 0.0) track
              (Executor.track_time_from_spans ctx track)
              total)
          [
            ("kernel", kernel);
            ("transfer", transfer);
            ("overhead", overhead);
          ]);
    tc "one launch for a single target" (fun () ->
        let run = saxpy_run 64 in
        check Alcotest.int "launches" 1 run.Core.Run.exec.Executor.kernel_launches);
    tc "transferred bytes match mapped data" (fun () ->
        let n = 64 in
        let run = saxpy_run n in
        (* x in (4n), y in (4n), a in (4), y out (4n) *)
        check Alcotest.int "bytes" ((3 * 4 * n) + 4)
          run.Core.Run.exec.Executor.bytes_transferred);
    tc "trace records allocs, transfers, launch" (fun () ->
        let run = saxpy_run 16 in
        let events = Trace.events run.Core.Run.exec.Executor.trace in
        let allocs =
          List.length
            (List.filter (function Trace.Alloc _ -> true | _ -> false) events)
        in
        let transfers =
          List.length
            (List.filter (function Trace.Transfer _ -> true | _ -> false) events)
        in
        check Alcotest.int "allocs" 3 allocs;
        check Alcotest.int "transfers" 4 transfers);
    tc "sgesl reuses buffers after the first iteration" (fun () ->
        let n = 16 in
        let run = Core.Run.run (Ftn_linpack.Fortran_sources.sgesl ~n) in
        let events = Trace.events run.Core.Run.exec.Executor.trace in
        let allocs =
          List.length
            (List.filter (function Trace.Alloc _ -> true | _ -> false) events)
        in
        (* b, a, t, k allocated once each despite n-1 launches (n is a
           named constant, folded at compile time) *)
        check Alcotest.int "four allocs" 4 allocs;
        check Alcotest.int "launches" (n - 1)
          run.Core.Run.exec.Executor.kernel_launches);
    tc "program output is captured" (fun () ->
        let run = saxpy_run 16 in
        check Alcotest.bool "has saxpy" true
          (Astring_like.contains (Core.Run.output run) "saxpy"));
    tc "missing kernel raises" (fun () ->
        let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:8) in
        (* synthesise a bitstream for a DIFFERENT kernel *)
        let wrong_bs =
          Synth.synthesise ~spec:Fpga_spec.u280
            (Ftn_linpack.Hls_baselines.saxpy_device ~n:8)
        in
        try
          ignore
            (Executor.run ~host:art.Core.Compiler.host ~bitstream:wrong_bs ());
          Alcotest.fail "expected error"
        with Ftn_fault.Fault.Error (Ftn_fault.Fault.Missing_kernel _, _) -> ());
    tc "host API mirrors interpreted flow" (fun () ->
        (* the hand-written baseline and the compiled flow agree numerically *)
        let n = 32 in
        let run = saxpy_run n in
        let hand = Ftn_linpack.Hls_baselines.run_saxpy ~n () in
        let got = Option.get (Core.Run.device_floats run ~name:"y") in
        Array.iteri
          (fun i v ->
            if Float.abs (v -. hand.Ftn_linpack.Hls_baselines.values.(i)) > 1e-6
            then Alcotest.failf "mismatch at %d" i)
          got);
    tc "kernel time equal between flows (paper Tables 1-2)" (fun () ->
        let n = 64 in
        let run = saxpy_run n in
        let hand = Ftn_linpack.Hls_baselines.run_saxpy ~n () in
        check (Alcotest.float 1e-9) "same kernel time"
          run.Core.Run.exec.Executor.kernel_time_s
          hand.Ftn_linpack.Hls_baselines.result.Executor.kernel_time_s);
    tc "cpu mode runs without a device" (fun () ->
        let out, steps =
          Core.Run.run_cpu (Ftn_linpack.Fortran_sources.saxpy ~n:16)
        in
        check Alcotest.bool "output" true (Astring_like.contains out "saxpy");
        check Alcotest.bool "did work" true (steps > 100));
    tc "cpu and fpga agree numerically" (fun () ->
        let src = Ftn_linpack.Fortran_sources.sgesl ~n:24 in
        let cpu_out, _ = Core.Run.run_cpu src in
        let fpga_run = Core.Run.run src in
        check Alcotest.string "same printed results" cpu_out
          (Core.Run.output fpga_run));
  ]

let model_tests =
  [
    tc "device time scales linearly for saxpy" (fun () ->
        let t1 = Core.Run.device_time (saxpy_run 1_000) in
        let t2 = Core.Run.device_time (saxpy_run 4_000) in
        (* kernel part quadruples; overheads are shared *)
        let k1 = Core.Run.kernel_time (saxpy_run 1_000) in
        let k2 = Core.Run.kernel_time (saxpy_run 4_000) in
        check Alcotest.bool "kernel 4x" true
          (Float.abs ((k2 /. k1) -. 4.0) < 0.1);
        check Alcotest.bool "total grows" true (t2 > t1));
    tc "sgesl total scales quadratically" (fun () ->
        let t n =
          Core.Run.device_time
            (Core.Run.run (Ftn_linpack.Fortran_sources.sgesl ~n))
        in
        let r = t 256 /. t 128 in
        (* n(n-1)/2 ratio for 256 vs 128 is 4.02; fixed overheads drag the
           observed ratio slightly below that *)
        check Alcotest.bool "about 4x" true (r > 3.2 && r < 4.5));
    tc "fpga power between floor and floor+dynamic" (fun () ->
        let run = saxpy_run 2_048 in
        let p = Core.Run.fpga_power run in
        let spec = Ftn_hlsim.Fpga_spec.u280 in
        check Alcotest.bool "above floor" true
          (p > spec.Ftn_hlsim.Fpga_spec.static_power_w);
        check Alcotest.bool "below ceiling" true
          (p < spec.Ftn_hlsim.Fpga_spec.static_power_w
             +. spec.Ftn_hlsim.Fpga_spec.dynamic_power_full_w *. 1.2));
    tc "echo mode does not change results" (fun () ->
        (* echo only mirrors output to stdout; captured text is the same *)
        let a = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n:16) in
        check Alcotest.bool "has output" true
          (String.length (Core.Run.output a) > 0));
  ]

let () =
  Alcotest.run "runtime"
    [
      ("data-env", data_env_tests);
      ("executor", executor_tests);
      ("model", model_tests);
    ]
