(* Tests for the async multi-device runtime: the event graph and
   scheduler, real kernel_wait semantics, per-device degradation, queue
   wait measured on the owning device's timeline, peer drain after a
   persistent device fault, the job queue, and the determinism property
   that any job DAG produces byte-identical output whatever the device
   count. *)

open Ftn_ir
open Ftn_interp
open Ftn_hlsim
open Ftn_runtime
module Fault = Ftn_fault.Fault

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let saxpy_bitstream n =
  Synth.synthesise ~frontend:Resources.Clang_hls ~spec:Fpga_spec.u280
    ~xclbin_name:"sched.xclbin"
    (Ftn_linpack.Hls_baselines.saxpy_device ~n)

(* Drive one SAXPY through the host API on [ctx]; returns the device
   buffers so callers can launch again. *)
let stage_saxpy ctx n =
  let x, y = Ftn_linpack.References.saxpy_inputs ~n in
  let hx = Rtval.of_float_array Types.F32 x in
  let hy = Rtval.of_float_array Types.F32 y in
  let ha = Rtval.of_float_array ~shape:[] Types.F32 [| 2.0 |] in
  let dx = Executor.api_alloc ctx ~name:"x" ~memory_space:1 ~elt:Types.F32 ~shape:[ n ] in
  let dy = Executor.api_alloc ctx ~name:"y" ~memory_space:1 ~elt:Types.F32 ~shape:[ n ] in
  let da = Executor.api_alloc ctx ~name:"a" ~memory_space:1 ~elt:Types.F32 ~shape:[] in
  Executor.api_transfer ctx ~src:hx ~dst:dx;
  Executor.api_transfer ctx ~src:hy ~dst:dy;
  Executor.api_transfer ctx ~src:ha ~dst:da;
  [ Rtval.Buf dx; Rtval.Buf dy; Rtval.Buf da ]

let persistent_plan =
  match Fault.parse_plan "launch:nth=1:persistent" with
  | Ok p -> p
  | Error m -> Fmt.failwith "bad plan: %s" m

(* --- scheduler and event units --- *)

let submit ?(lane = Event.Compute) ?(track = "kernel") ?ready_s ?(deps = [])
    sched dev ~submit_s ~dur_s =
  Scheduler.submit sched ~device:dev ~lane ~track ~label:"t" ~submit_s
    ?ready_s ~deps ~dur_s ()

let scheduler_tests =
  [
    tc "start is max of ready, lane and deps; lane advances" (fun () ->
        let s = Scheduler.create () in
        let d = Scheduler.device s 0 in
        let a = submit s d ~submit_s:0.0 ~dur_s:2.0 in
        check (Alcotest.float 0.0) "first starts at ready" 0.0 a.Event.ev_start_s;
        (* same lane: queues behind a *)
        let b = submit s d ~submit_s:0.5 ~dur_s:1.0 in
        check (Alcotest.float 0.0) "queued behind lane" 2.0 b.Event.ev_start_s;
        check (Alcotest.float 0.0) "queue wait from submit" 1.5
          (Event.queue_wait_s b);
        (* other lane is free, but the dependency gates it *)
        let c =
          submit s d ~lane:Event.Copy_in ~track:"transfer" ~submit_s:0.0
            ~deps:[ b ] ~dur_s:0.5
        in
        check (Alcotest.float 0.0) "dep gates start" 3.0 c.Event.ev_start_s;
        check (Alcotest.float 0.0) "finish" 3.5 c.Event.ev_finish_s;
        check Alcotest.bool "deps recorded" true
          (List.mem b.Event.ev_id c.Event.ev_deps));
    tc "lanes are independent engines" (fun () ->
        let s = Scheduler.create () in
        let d = Scheduler.device s 0 in
        ignore (submit s d ~submit_s:0.0 ~dur_s:5.0);
        let t =
          submit s d ~lane:Event.Copy_in ~track:"transfer" ~submit_s:0.0
            ~dur_s:1.0
        in
        check (Alcotest.float 0.0) "transfer overlaps compute" 0.0
          t.Event.ev_start_s;
        let o =
          submit s d ~lane:Event.Copy_out ~track:"transfer" ~submit_s:0.0
            ~dur_s:1.0
        in
        check (Alcotest.float 0.0) "duplex DMA: d2h overlaps h2d" 0.0
          o.Event.ev_start_s);
    tc "elapsed is the makespan, busy the sum" (fun () ->
        let s = Scheduler.create ~devices:2 () in
        let d0 = Scheduler.device s 0 and d1 = Scheduler.device s 1 in
        ignore (submit s d0 ~submit_s:0.0 ~dur_s:2.0);
        ignore (submit s d1 ~submit_s:0.0 ~dur_s:3.0);
        ignore
          (submit s d1 ~lane:Event.Copy_in ~track:"transfer" ~submit_s:0.0
             ~dur_s:1.0);
        check (Alcotest.float 0.0) "makespan" 3.0 (Scheduler.elapsed_s s);
        check (Alcotest.float 0.0) "busy sums tracks" 4.0
          (Scheduler.device_busy_s d1));
    tc "pick_device is least-loaded, ties to lowest id" (fun () ->
        let s = Scheduler.create ~devices:3 () in
        check Alcotest.int "fresh picks 0" 0
          (Scheduler.pick_device s).Scheduler.dev_id;
        ignore (submit s (Scheduler.device s 0) ~submit_s:0.0 ~dur_s:1.0);
        check Alcotest.int "then 1" 1
          (Scheduler.pick_device s).Scheduler.dev_id);
    tc "failed devices are skipped; all-failed raises" (fun () ->
        let s = Scheduler.create ~devices:2 () in
        Scheduler.fail_device s (Scheduler.device s 0);
        check Alcotest.int "skips failed" 1
          (Scheduler.pick_device s).Scheduler.dev_id;
        check (Alcotest.option Alcotest.int) "peer of 1 is none" None
          (Option.map
             (fun d -> d.Scheduler.dev_id)
             (Scheduler.healthy_peer s ~except:1));
        Scheduler.fail_device s (Scheduler.device s 1);
        (try
           ignore (Scheduler.pick_device s);
           Alcotest.fail "expected Invalid_host"
         with Fault.Error (Fault.Invalid_host _, _) -> ());
        check Alcotest.int "drains counted once per device" 2
          (Scheduler.drains s));
    tc "events overlap test" (fun () ->
        let s = Scheduler.create () in
        let d = Scheduler.device s 0 in
        let a = submit s d ~submit_s:0.0 ~dur_s:2.0 in
        let b =
          submit s d ~lane:Event.Copy_in ~track:"transfer" ~submit_s:0.0
            ~dur_s:1.0
        in
        check Alcotest.bool "overlap" true (Event.overlaps a b);
        let c = submit s d ~submit_s:2.0 ~dur_s:1.0 in
        check Alcotest.bool "sequential don't overlap" false
          (Event.overlaps a c));
  ]

(* --- kernel_wait semantics (regression: it used to succeed on any
   operand without blocking) --- *)

let wait_host body_fn =
  let b = Builder.create () in
  let args, body = body_fn b in
  let fn = Ftn_dialects.Func_d.func ~sym_name:"f" ~args ~result_tys:[]
      (body @ [ Ftn_dialects.Func_d.return () ])
  in
  Op.module_op [ fn ]

let expect_invalid_wait f =
  try
    ignore (f ());
    Alcotest.fail "expected Invalid_host from device.kernel_wait"
  with
  | Fault.Error (Fault.Invalid_host { op = "device.kernel_wait"; _ }, _) -> ()

let kernel_wait_tests =
  [
    tc "waiting on a never-launched handle raises" (fun () ->
        let host =
          wait_host (fun b ->
              let kc =
                Ftn_dialects.Device.kernel_create b ~args:[]
                  ~device_function:"saxpy_hw" ()
              in
              ([], [ kc; Ftn_dialects.Device.kernel_wait (Op.result1 kc) ]))
        in
        expect_invalid_wait (fun () ->
            Executor.run ~entry:"f" ~host ~bitstream:(saxpy_bitstream 8) ()));
    tc "waiting on a foreign or stale handle raises" (fun () ->
        let host =
          wait_host (fun b ->
              let h = Builder.fresh b Types.Kernel_handle in
              ([ h ], [ Ftn_dialects.Device.kernel_wait h ]))
        in
        expect_invalid_wait (fun () ->
            Executor.run ~entry:"f" ~args:[ Rtval.Handle 424242 ] ~host
              ~bitstream:(saxpy_bitstream 8) ()));
    tc "waiting on a non-handle operand raises" (fun () ->
        let host =
          wait_host (fun b ->
              let h = Builder.fresh b Types.Kernel_handle in
              ([ h ], [ Ftn_dialects.Device.kernel_wait h ]))
        in
        expect_invalid_wait (fun () ->
            Executor.run ~entry:"f" ~args:[ Rtval.Int 3 ] ~host
              ~bitstream:(saxpy_bitstream 8) ()));
    tc "wait genuinely blocks: cursor jumps to the launch's finish" (fun () ->
        let n = 16 in
        let ctx = Executor.create_context (saxpy_bitstream n) in
        let args = stage_saxpy ctx n in
        let ev = Executor.api_launch_async ctx ~kernel:"saxpy_hw" args in
        (* async: outstanding work retires after the current cursor *)
        check Alcotest.bool "launch is async" true
          (Executor.finish_time ctx > 0.0);
        Executor.wait_event ctx ev;
        check (Alcotest.float 0.0) "cursor reached the completion event"
          ev.Event.ev_finish_s (Executor.finish_time ctx));
  ]

(* --- per-device degradation and peer drain --- *)

let fault_tests =
  [
    tc "degradation is per-device: a clean peer stays clean" (fun () ->
        let sched = Scheduler.create ~devices:2 () in
        let d0 = Scheduler.device sched 0 and d1 = Scheduler.device sched 1 in
        let bs = saxpy_bitstream 8 in
        (* drain disabled so the persistent fault exercises cpu_fallback *)
        let retry = { Fault.default_retry with Fault.drain = false } in
        let bad =
          Executor.create_context ~faults:persistent_plan ~retry ~sched
            ~device:d0 bs
        in
        Executor.api_launch bad ~kernel:"saxpy_hw" (stage_saxpy bad 8);
        let rbad = Executor.result_of_context bad in
        check Alcotest.bool "faulted job degraded" true rbad.Executor.degraded;
        check Alcotest.bool "device 0 flagged" true d0.Scheduler.dev_degraded;
        let clean = Executor.create_context ~sched ~device:d1 bs in
        Executor.api_launch clean ~kernel:"saxpy_hw" (stage_saxpy clean 8);
        let rclean = Executor.result_of_context clean in
        check Alcotest.bool "clean job not degraded" false
          rclean.Executor.degraded;
        check Alcotest.bool "device 1 unflagged" false
          d1.Scheduler.dev_degraded);
    tc "persistent fault drains to a healthy peer" (fun () ->
        let sched = Scheduler.create ~devices:2 () in
        let d0 = Scheduler.device sched 0 in
        let bs = saxpy_bitstream 8 in
        let ctx =
          Executor.create_context ~faults:persistent_plan ~sched ~device:d0 bs
        in
        Executor.api_launch ctx ~kernel:"saxpy_hw" (stage_saxpy ctx 8);
        let r = Executor.result_of_context ctx in
        check Alcotest.bool "drained" true r.Executor.drained;
        check Alcotest.bool "not degraded" false r.Executor.degraded;
        check Alcotest.int "finished on the peer" 1 r.Executor.device;
        check Alcotest.bool "bad device failed" true d0.Scheduler.dev_failed;
        (* the re-staging DMA is charged honestly and traced *)
        check Alcotest.bool "drain transfer traced" true
          (List.exists
             (function
               | Trace.Transfer { name; _ } -> contains name "drain:"
               | _ -> false)
             (Trace.events r.Executor.trace));
        (* results are still correct numbers *)
        match
          Data_env.lookup r.Executor.data ~name:"y" ~memory_space:1
        with
        | None -> Alcotest.fail "y not on device"
        | Some buf ->
          let x, y = Ftn_linpack.References.saxpy_inputs ~n:8 in
          Ftn_linpack.References.saxpy ~a:2.0 ~x ~y;
          Array.iteri
            (fun i v ->
              if Float.abs (v -. y.(i)) > 1e-6 then
                Alcotest.failf "y(%d) = %f, want %f" i v y.(i))
            (Rtval.float_buffer buf));
    tc "single device with drain enabled still falls back to cpu" (fun () ->
        let ctx =
          Executor.create_context ~faults:persistent_plan (saxpy_bitstream 8)
        in
        Executor.api_launch ctx ~kernel:"saxpy_hw" (stage_saxpy ctx 8);
        let r = Executor.result_of_context ctx in
        check Alcotest.bool "degraded" true r.Executor.degraded;
        check Alcotest.bool "not drained" false r.Executor.drained;
        check Alcotest.int "cpu fallbacks" 1 r.Executor.cpu_fallbacks);
  ]

(* --- queue wait on the owning device's timeline --- *)

let queue_wait_tests =
  [
    tc "two-job queue: second waits exactly kernel+overhead" (fun () ->
        let n = 16 in
        let ctx = Executor.create_context (saxpy_bitstream n) in
        let args = stage_saxpy ctx n in
        let e1 = Executor.api_launch_async ctx ~kernel:"saxpy_hw" args in
        let e2 = Executor.api_launch_async ctx ~kernel:"saxpy_hw" args in
        Executor.wait_event ctx e1;
        Executor.wait_event ctx e2;
        let launches =
          List.filter_map
            (function
              | Trace.Launch { kernel_time_s; overhead_s; queue_wait_s; _ } ->
                Some (kernel_time_s, overhead_s, queue_wait_s)
              | _ -> None)
            (Trace.events (Executor.result_of_context ctx).Executor.trace)
        in
        match launches with
        | [ (k1, o1, w1); (_, _, w2) ] ->
          check (Alcotest.float 0.0) "first launch never queued" 0.0 w1;
          check (Alcotest.float 1e-15) "second queued behind the first"
            (k1 +. o1) w2
        | l -> Alcotest.failf "expected 2 launches, got %d" (List.length l));
    tc "queue wait counts a peer context occupying the device" (fun () ->
        let sched = Scheduler.create () in
        let d = Scheduler.device sched 0 in
        let bs = saxpy_bitstream 16 in
        let a = Executor.create_context ~sched ~device:d bs in
        let b = Executor.create_context ~sched ~device:d bs in
        (* b is staged and ready before a's kernel even starts, so b's
           launch must queue behind a's in-flight kernel chain *)
        let args_b = stage_saxpy b 16 in
        let ea = Executor.api_launch_async a ~kernel:"saxpy_hw" (stage_saxpy a 16) in
        Executor.api_launch b ~kernel:"saxpy_hw" args_b;
        let launches =
          List.filter_map
            (function
              | Trace.Launch { queue_wait_s; _ } -> Some queue_wait_s
              | _ -> None)
            (Trace.events (Executor.result_of_context b).Executor.trace)
        in
        (match launches with
        | [ w ] -> check Alcotest.bool "positive queue wait" true (w > 0.0)
        | l -> Alcotest.failf "expected 1 launch, got %d" (List.length l));
        Executor.wait_event a ea);
    tc "transfers overlap a peer's compute on the duplex DMA lanes"
      (fun () ->
        let sched = Scheduler.create () in
        let d = Scheduler.device sched 0 in
        let bs = saxpy_bitstream 64 in
        let a = Executor.create_context ~sched ~device:d bs in
        let ea = Executor.api_launch_async a ~kernel:"saxpy_hw" (stage_saxpy a 64) in
        let compute_busy_until = Scheduler.lane_avail_s d Event.Compute in
        (* a second context stages its data while a's kernel runs: the
           Copy_in lane frees well before the compute lane, so b's first
           h2d starts inside a's kernel window *)
        let b = Executor.create_context ~sched ~device:d bs in
        let copy_in_before = Scheduler.lane_avail_s d Event.Copy_in in
        ignore (stage_saxpy b 64);
        let copy_in_after = Scheduler.lane_avail_s d Event.Copy_in in
        check Alcotest.bool "DMA lane free while compute busy" true
          (copy_in_before < compute_busy_until);
        check Alcotest.bool "staging ran on the DMA lane" true
          (copy_in_after > copy_in_before);
        Executor.wait_event a ea);
    tc "same-context d2h waits for the in-flight kernel" (fun () ->
        let n = 16 in
        let ctx = Executor.create_context (saxpy_bitstream n) in
        let x, y = Ftn_linpack.References.saxpy_inputs ~n in
        let hy = Rtval.of_float_array Types.F32 y in
        ignore x;
        let args = stage_saxpy ctx n in
        let ev = Executor.api_launch_async ctx ~kernel:"saxpy_hw" args in
        (match args with
        | [ _; Rtval.Buf dy; _ ] ->
          Executor.api_transfer ctx ~src:dy ~dst:hy
        | _ -> Alcotest.fail "unexpected args");
        let d = Executor.context_device ctx in
        check Alcotest.bool "d2h starts after the kernel retires" true
          (Scheduler.lane_avail_s d Event.Copy_out >= ev.Event.ev_finish_s);
        Executor.wait_event ctx ev);
  ]

(* --- the job queue --- *)

let compiled_saxpy =
  lazy
    (let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:8) in
     (art.Core.Compiler.host, Core.Compiler.synthesise art))

let compiled_sgesl =
  lazy
    (let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.sgesl ~n:8) in
     (art.Core.Compiler.host, Core.Compiler.synthesise art))

let mk_job ?deps ?tenant ~name which =
  let host, bs = Lazy.force (if which = 0 then compiled_saxpy else compiled_sgesl) in
  Jobs.job ?tenant ?deps ~name (fun ?faults ~sched ~device ~start_s () ->
      Executor.run ?faults ~sched ~device ~start_s ~host ~bitstream:bs ())

let jobs_tests =
  [
    tc "round-robin interleaves tenants" (fun () ->
        let specs =
          List.init 4 (fun i -> mk_job ~tenant:"a" ~name:(Fmt.str "a%d" i) 0)
          @ List.init 4 (fun i -> mk_job ~tenant:"b" ~name:(Fmt.str "b%d" i) 0)
        in
        let stats = Jobs.run specs in
        check Alcotest.int "all run" 8 stats.Jobs.jobs_run;
        let finish name =
          (List.assoc name stats.Jobs.results).Executor.finish_s
        in
        (* one device: pickup order = finish order; b0 must not starve
           behind all of tenant a's queue *)
        check Alcotest.bool "b0 before a1" true (finish "b0" < finish "a1");
        check Alcotest.bool "b1 before a2" true (finish "b1" < finish "a2"));
    tc "outputs concatenate in submission order" (fun () ->
        let specs =
          [ mk_job ~name:"s" 0; mk_job ~name:"g" 1; mk_job ~name:"s2" 0 ]
        in
        let stats = Jobs.run ~config:{ Jobs.default_config with devices = 2 } specs in
        let outs =
          List.map (fun (_, r) -> r.Executor.output) stats.Jobs.results
        in
        check Alcotest.string "concatenation" (String.concat "" outs)
          stats.Jobs.output);
    tc "dependencies gate arrival; cycles are dropped not deadlocked"
      (fun () ->
        let specs =
          [
            mk_job ~name:"root" 0;
            mk_job ~deps:[ "root" ] ~name:"child" 0;
            mk_job ~deps:[ "dead2" ] ~name:"dead1" 0;
            mk_job ~deps:[ "dead1" ] ~name:"dead2" 0;
          ]
        in
        let stats = Jobs.run specs in
        check Alcotest.int "two run" 2 stats.Jobs.jobs_run;
        check Alcotest.int "cycle dropped" 2 stats.Jobs.jobs_dropped;
        let root = List.assoc "root" stats.Jobs.results in
        let child = List.assoc "child" stats.Jobs.results in
        check Alcotest.bool "child after root" true
          (child.Executor.finish_s >= root.Executor.finish_s));
    tc "queue_depth must be positive" (fun () ->
        try
          ignore
            (Jobs.run
               ~config:{ Jobs.default_config with queue_depth = 0 }
               [ mk_job ~name:"x" 0 ]);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    tc "multi-device run spreads jobs and shortens the makespan" (fun () ->
        let specs n = List.init n (fun i -> mk_job ~name:(Fmt.str "j%d" i) 0) in
        let s1 = Jobs.run ~config:{ Jobs.default_config with devices = 1 } (specs 8) in
        let s4 = Jobs.run ~config:{ Jobs.default_config with devices = 4 } (specs 8) in
        check Alcotest.bool "faster" true
          (s4.Jobs.elapsed_s < s1.Jobs.elapsed_s);
        check Alcotest.string "identical output" s1.Jobs.output s4.Jobs.output;
        let snap = Scheduler.snapshot s4.Jobs.scheduler in
        check Alcotest.int "4 devices" 4 (List.length snap);
        List.iter
          (fun ds ->
            check Alcotest.int "2 jobs each" 2 ds.Scheduler.ds_jobs)
          snap);
    tc "fault device completes all jobs by draining" (fun () ->
        let specs = List.init 6 (fun i -> mk_job ~name:(Fmt.str "j%d" i) 0) in
        let stats =
          Jobs.run
            ~config:
              {
                Jobs.default_config with
                Jobs.devices = 3;
                queue_depth = 8;
                fault_device = Some (1, persistent_plan);
              }
            specs
        in
        check Alcotest.int "all jobs run" 6 stats.Jobs.jobs_run;
        check Alcotest.int "none dropped" 0 stats.Jobs.jobs_dropped;
        check Alcotest.bool "at least one drained" true
          (stats.Jobs.drained_jobs >= 1);
        check Alcotest.int "none degraded" 0 stats.Jobs.degraded_jobs);
  ]

(* --- determinism property: any DAG, 1 vs N devices --- *)

let props =
  let build_specs (n, seed) =
    let rng = Random.State.make [| seed |] in
    List.init n (fun i ->
        let deps =
          List.filteri
            (fun j _ -> j < i && Random.State.int rng 4 = 0)
            (List.init n (fun j -> j))
          |> List.map (Fmt.str "j%d")
        in
        mk_job ~deps
          ~tenant:(Fmt.str "t%d" (i mod 3))
          ~name:(Fmt.str "j%d" i)
          (Random.State.int rng 2))
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:12
        ~name:
          "any job DAG: 1 vs 3 devices gives identical output and identical \
           kernel/transfer sim-time"
        (QCheck.make
           QCheck.Gen.(pair (int_range 1 8) (int_bound 10_000))
           ~print:(fun (n, seed) -> Fmt.str "n=%d seed=%d" n seed))
        (fun case ->
          let run devices =
            Jobs.run
              ~config:
                { Jobs.default_config with Jobs.devices; queue_depth = 4 }
              (build_specs case)
          in
          let s1 = run 1 and s3 = run 3 in
          if s1.Jobs.jobs_dropped <> 0 || s3.Jobs.jobs_dropped <> 0 then
            QCheck.Test.fail_reportf "jobs dropped";
          if not (String.equal s1.Jobs.output s3.Jobs.output) then
            QCheck.Test.fail_reportf "outputs differ";
          if not (Float.equal s1.Jobs.total_kernel_s s3.Jobs.total_kernel_s)
          then
            QCheck.Test.fail_reportf "kernel sim-time differs: %.17g vs %.17g"
              s1.Jobs.total_kernel_s s3.Jobs.total_kernel_s;
          if
            not
              (Float.equal s1.Jobs.total_transfer_s s3.Jobs.total_transfer_s)
          then
            QCheck.Test.fail_reportf
              "transfer sim-time differs: %.17g vs %.17g"
              s1.Jobs.total_transfer_s s3.Jobs.total_transfer_s;
          true);
    ]

let () =
  Alcotest.run "sched"
    [
      ("scheduler", scheduler_tests);
      ("kernel-wait", kernel_wait_tests);
      ("faults", fault_tests);
      ("queue-wait", queue_wait_tests);
      ("jobs", jobs_tests);
      ("props", props);
    ]
